//! Argument parsing for the `figures` binary.
//!
//! A small hand-rolled parser (the build environment has no crates.io
//! access, so `clap` cannot be vendored) covering exactly the surface the
//! binary needs: `--quick`, `--seeds`, `--replications`, `--threads`,
//! `--shard`, `--balance`, `--timings`, `--calibrate`, `--merge`,
//! `--serve`, `--worker`, `--lease`, `--wire-faults`, `--list`,
//! `--help`, and positional experiment names. Parsing is pure
//! and errors are **typed** ([`ArgError`]) so the binary can render a
//! clean one-liner and the unit tests can assert on the exact failure,
//! not a string.

use std::fmt;
use xsched_core::BalanceMode;

/// A user-input problem with the argument vector. Every variant renders a
/// one-line message through `Display`; the binary prints it with usage and
/// exits 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A flag that needs a value was last on the line.
    MissingValue(String),
    /// A value failed to parse; `want` says what shape was expected.
    InvalidValue {
        /// The flag the value belonged to.
        flag: String,
        /// The offending value as typed.
        value: String,
        /// Human description of the expected shape.
        want: &'static str,
    },
    /// `--shard i/n` with `i` or `n` outside `1 ≤ i ≤ n` — rejected here
    /// with a typed error instead of whatever a downstream assert would
    /// have produced.
    ShardOutOfRange {
        /// 1-based shard index as given.
        index: usize,
        /// Total shard count as given.
        of: usize,
    },
    /// An option the parser does not know.
    UnknownOption(String),
    /// Two flags that cannot be combined.
    Conflict(&'static str),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            ArgError::InvalidValue { flag, value, want } => {
                write!(f, "invalid value `{value}` for {flag} (want {want})")
            }
            ArgError::ShardOutOfRange { index, of } => write!(
                f,
                "shard index out of range in `{index}/{of}` (want 1 ≤ i ≤ n, n ≥ 1)"
            ),
            ArgError::UnknownOption(opt) => write!(f, "unknown option `{opt}` (see --help)"),
            ArgError::Conflict(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Parsed command line for the `figures` binary.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FiguresArgs {
    /// Experiment names to run (empty = caller's default set).
    pub experiments: Vec<String>,
    /// Shorter runs for smoke-testing.
    pub quick: bool,
    /// Replication seeds (empty = each figure's configured seed).
    pub seeds: Vec<u64>,
    /// Worker threads; `0` = one per core.
    pub threads: usize,
    /// Run only shard `i` of `n` of every sweep (1-based `i`), printing
    /// encoded shard payloads instead of tables.
    pub shard: Option<(usize, usize)>,
    /// How sweep task grids are sliced into shards.
    pub balance: BalanceMode,
    /// Write per-cell timing telemetry to this JSON file after the run.
    pub timings_out: Option<String>,
    /// Write the full observability snapshot (metrics registry, timings,
    /// controller telemetry series) to this JSON file after the run.
    pub metrics_out: Option<String>,
    /// Print a per-task progress ticker to stderr while sweeps run.
    pub progress: bool,
    /// Split each splittable cell's measurement into this many
    /// independently-seeded sub-runs combined by batch means (`0` or `1`
    /// = off, the golden-pinned default). Changes result values (they
    /// become replication means), so every shard of one sweep — and its
    /// merge — must use the same value.
    pub subruns: u32,
    /// Degrade failed sweep tasks to marked `FAILED` cells and keep
    /// sweeping instead of aborting on the first failure.
    pub keep_going: bool,
    /// Abort the whole run on the first task failure (the default;
    /// provided as an explicit escape hatch conflicting with
    /// `--keep-going`).
    pub fail_fast: bool,
    /// Retries per task after a failed attempt (deterministic backoff
    /// between attempts).
    pub retry: u32,
    /// Per-task watchdog deadline in seconds; an attempt running past it
    /// is abandoned and scored a timeout.
    pub task_timeout: Option<f64>,
    /// Checkpoint journal path: every completed task outcome is appended
    /// (fsync'd) so a killed run can `--resume`.
    pub checkpoint: Option<String>,
    /// Resume from the `--checkpoint` journal, skipping journaled tasks.
    pub resume: bool,
    /// Fault injection: probability an attempt panics at task start.
    pub inject_panics: f64,
    /// Fault injection: probability an attempt stalls at task start.
    pub inject_stalls: f64,
    /// Calibrate the cost model from a previously dumped timings file.
    pub calibrate: Option<String>,
    /// Shard payload files to merge instead of simulating.
    pub merge: Vec<String>,
    /// Serve every sweep as a task-queue coordinator on this TCP address
    /// (`host:port`): workers claim task leases, this process records
    /// their outcomes and prints the merged tables.
    pub serve: Option<String>,
    /// Run as a worker client of the coordinator at this TCP address:
    /// claim task leases, execute, stream outcomes back. Prints no
    /// tables (the coordinator does).
    pub worker: Option<String>,
    /// Coordinator lease duration in seconds (`None` = the default 10):
    /// a worker that neither records nor heartbeats within the window
    /// loses the task to reassignment.
    pub lease: Option<f64>,
    /// Worker-side deterministic wire-fault injection seed: drop /
    /// duplicate / delay / truncate a few percent of frames, pure in
    /// (seed, frame index).
    pub wire_faults: Option<u64>,
    /// Print the experiment list and exit.
    pub list: bool,
    /// Print usage and exit.
    pub help: bool,
}

/// Usage text for `--help`.
pub const USAGE: &str = "\
figures — regenerate the paper's tables and figures

USAGE:
    figures [OPTIONS] [EXPERIMENT]...

ARGS:
    [EXPERIMENT]...      experiment names (`all` or empty = everything);
                         use --list to enumerate

OPTIONS:
    -q, --quick              shorter runs (smoke-test scale)
    -s, --seeds LIST         comma-separated replication seeds
                             [default: each figure's configured seed (42)]
    -r, --replications N     run N replications seeded base, base+1, ...
                             (base = first --seeds value, or 42); tables
                             then print mean ±95% CI half-width per cell
    -t, --threads N          worker threads, 0 = one per core [default: 0]
        --shard I/N          run only the I-th of N task slices (I is
                             1-based) and print encoded shard payloads to
                             stdout instead of tables; redirect each
                             shard's stdout to a file
        --balance MODE       how --shard slices the task grid: `stride`
                             (static striding, the default) or `cost`
                             (greedy LPT over predicted per-cell cost, so
                             heterogeneous grids balance across hosts);
                             every shard of one sweep must use the same
                             mode and --calibrate file. Also orders
                             in-process task claiming longest-first.
        --timings FILE       after the run, dump per-cell wall-clock
                             telemetry as JSON; feed it back with
                             --calibrate on the next run (alias for the
                             timings section of --metrics)
        --metrics FILE       after the run, write the full observability
                             snapshot as JSON: metrics registry (worker/
                             shard progress, cache hits/misses, task-time
                             histogram), the --timings cell telemetry,
                             and every controller session's MPL/queue/
                             latency time series. The file embeds the
                             timings schema, so --calibrate accepts it
        --progress           print a per-task completion ticker to stderr
                             while sweeps run (stdout stays table-only)
        --subruns K          split each fixed-MPL cell's measurement into
                             K independently-seeded sub-runs executed in
                             parallel and combined by batch means —
                             intra-cell parallelism for long cells. Cell
                             values become K-replication means, so tables
                             differ from an unsplit run (CIs shrink);
                             every shard of one sweep and its merge must
                             use the same K [default: off]
        --no-subruns         force unsplit cells (the default; provided as
                             an explicit escape hatch and conflicting
                             with --subruns)
        --keep-going         degrade failed sweep tasks (panics, watchdog
                             timeouts) to marked FAILED cells and keep
                             sweeping; failed cells render as FAILED in
                             the tables and carry typed failure records
                             through shard payloads and merges
        --fail-fast          abort the whole run on the first task
                             failure (the default; conflicts with
                             --keep-going)
        --retry N            retry each failed task up to N times with
                             deterministic exponential backoff; a retried
                             success is bit-identical to a first-try
                             success (the scenario seed never changes)
                             [default: 0]
        --task-timeout SECS  per-task watchdog deadline: an attempt still
                             running after SECS wall-clock seconds is
                             abandoned and scored a timeout (then retried
                             or failed per --retry/--keep-going)
        --checkpoint FILE    append every completed task outcome to FILE
                             (fsync'd per task, kill-safe) so an
                             interrupted run can --resume; without
                             --resume the file is truncated first
        --resume             skip tasks already recorded in --checkpoint
                             (requires it); the finished tables are
                             byte-identical to an uninterrupted run.
                             Journaled failures replay as failures —
                             delete the journal to retry them
        --inject-panics P    fault injection: panic each task attempt
                             with probability P, deterministically
                             derived from (seed, task, attempt) — for
                             exercising the paths above [default: 0]
        --inject-stalls P    fault injection: stall each task attempt
                             (0.2s) with probability P; with a shorter
                             --task-timeout, a deterministic timeout
                             [default: 0]
        --calibrate FILE     calibrate the cost model from a --timings
                             or --metrics dump of a previous run
                             (otherwise a structural model predicts from
                             scenario shape alone)
        --merge FILES        comma-separated shard payload files; merge
                             them (running no sweep tasks) and print the
                             tables, byte-identical to an unsharded run
                             under the same flags; repeatable. Reports
                             that resolve MPLs while building their plan
                             (fig11-13, ablation_policy) repeat that
                             deterministic search locally
        --serve ADDR         coordinate every sweep over TCP at ADDR
                             (host:port): hand out task leases to
                             --worker clients, record their outcomes
                             (checkpointed under --checkpoint, resumable
                             with --resume), and print merged tables
                             byte-identical to a direct run. Dead
                             workers are detected by lease expiry and
                             their tasks reassigned
        --worker ADDR        run as a worker of the coordinator at ADDR:
                             claim task leases, execute, heartbeat,
                             stream outcomes back; reconnect with
                             deterministic backoff on transport faults.
                             Prints no tables. If the coordinator is
                             unreachable from the start, degrades to a
                             plain local run. Must be launched with the
                             same experiment flags as the coordinator
        --lease SECS         coordinator lease duration [default: 10]:
                             a worker silent for SECS loses its task to
                             reassignment (requires --serve)
        --wire-faults SEED   deterministically drop/duplicate/delay/
                             truncate a few percent of this worker's
                             frames (requires --worker) — the sweep must
                             still converge byte-identical
    -l, --list               list experiment names and exit
    -h, --help               print this help and exit

Sharded sweeps: run each `--shard i/N` (same flags otherwise) on any
mix of processes or hosts, collect the outputs, then `--merge` them:

    figures --quick --shard 1/2 --balance cost fig3 > s1.txt
    figures --quick --shard 2/2 --balance cost fig3 > s2.txt
    figures --quick --merge s1.txt,s2.txt fig3

Cost calibration feedback loop (timings from any run improve the next):

    figures --quick --timings t.json fig3
    figures --quick --shard 1/2 --balance cost --calibrate t.json fig3

Coordinated sweeps (work-stealing across hosts; kill a worker mid-run
and its leased tasks are reassigned — the tables do not change a byte):

    figures --quick --serve 0.0.0.0:7070 fig3        # prints the tables
    figures --quick --worker hostA:7070 fig3         # any number of these
";

fn parse_shard(v: &str) -> Result<(usize, usize), ArgError> {
    let invalid = || ArgError::InvalidValue {
        flag: "--shard".into(),
        value: v.to_string(),
        want: "I/N, e.g. `2/8` (1-based)",
    };
    let (i, n) = v.split_once('/').ok_or_else(invalid)?;
    let i: usize = i.trim().parse().map_err(|_| invalid())?;
    let n: usize = n.trim().parse().map_err(|_| invalid())?;
    if i == 0 || n == 0 || i > n {
        return Err(ArgError::ShardOutOfRange { index: i, of: n });
    }
    Ok((i, n))
}

fn parse_balance(v: &str) -> Result<BalanceMode, ArgError> {
    match v {
        "stride" => Ok(BalanceMode::Stride),
        "cost" => Ok(BalanceMode::Cost),
        other => Err(ArgError::InvalidValue {
            flag: "--balance".into(),
            value: other.to_string(),
            want: "`stride` or `cost`",
        }),
    }
}

fn parse_u64_list(flag: &str, v: &str) -> Result<Vec<u64>, ArgError> {
    let seeds: Result<Vec<u64>, _> = v.split(',').map(|s| s.trim().parse::<u64>()).collect();
    match seeds {
        Ok(s) if !s.is_empty() => Ok(s),
        _ => Err(ArgError::InvalidValue {
            flag: flag.to_string(),
            value: v.to_string(),
            want: "a comma-separated seed list, e.g. `42,43,44`",
        }),
    }
}

/// Parse the argument vector (without the program name).
pub fn parse_args<S: AsRef<str>>(args: &[S]) -> Result<FiguresArgs, ArgError> {
    let mut out = FiguresArgs::default();
    let mut replications: Option<usize> = None;
    let mut subruns: Option<u32> = None;
    let mut no_subruns = false;
    let mut it = args.iter().map(AsRef::as_ref);
    while let Some(arg) = it.next() {
        let mut value_for = |flag: &str| {
            it.next()
                .map(str::to_string)
                .ok_or_else(|| ArgError::MissingValue(flag.to_string()))
        };
        match arg {
            "-q" | "--quick" => out.quick = true,
            "-l" | "--list" => out.list = true,
            "-h" | "--help" => out.help = true,
            "-s" | "--seeds" => out.seeds = parse_u64_list(arg, &value_for(arg)?)?,
            "-r" | "--replications" => {
                let v = value_for(arg)?;
                let n: usize = v.parse().map_err(|_| ArgError::InvalidValue {
                    flag: arg.to_string(),
                    value: v.clone(),
                    want: "a replication count ≥ 1",
                })?;
                if n == 0 {
                    return Err(ArgError::InvalidValue {
                        flag: arg.to_string(),
                        value: v,
                        want: "a replication count ≥ 1",
                    });
                }
                replications = Some(n);
            }
            "-t" | "--threads" => {
                let v = value_for(arg)?;
                out.threads = v.parse().map_err(|_| ArgError::InvalidValue {
                    flag: arg.to_string(),
                    value: v,
                    want: "a thread count (0 = one per core)",
                })?;
            }
            "--shard" => out.shard = Some(parse_shard(&value_for(arg)?)?),
            "--balance" => out.balance = parse_balance(&value_for(arg)?)?,
            "--timings" => out.timings_out = Some(value_for(arg)?),
            "--metrics" => out.metrics_out = Some(value_for(arg)?),
            "--progress" => out.progress = true,
            "--subruns" => {
                let v = value_for(arg)?;
                let n: u32 = v.parse().map_err(|_| ArgError::InvalidValue {
                    flag: arg.to_string(),
                    value: v.clone(),
                    want: "a sub-run count ≥ 2",
                })?;
                if n < 2 {
                    return Err(ArgError::InvalidValue {
                        flag: arg.to_string(),
                        value: v,
                        want: "a sub-run count ≥ 2",
                    });
                }
                subruns = Some(n);
            }
            "--no-subruns" => no_subruns = true,
            "--keep-going" => out.keep_going = true,
            "--fail-fast" => out.fail_fast = true,
            "--retry" => {
                let v = value_for(arg)?;
                out.retry = v.parse().map_err(|_| ArgError::InvalidValue {
                    flag: arg.to_string(),
                    value: v,
                    want: "a retry count ≥ 0",
                })?;
            }
            "--task-timeout" => {
                let v = value_for(arg)?;
                let secs: f64 = v.parse().unwrap_or(f64::NAN);
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err(ArgError::InvalidValue {
                        flag: arg.to_string(),
                        value: v,
                        want: "a positive deadline in seconds",
                    });
                }
                out.task_timeout = Some(secs);
            }
            "--checkpoint" => out.checkpoint = Some(value_for(arg)?),
            "--resume" => out.resume = true,
            "--inject-panics" | "--inject-stalls" => {
                let v = value_for(arg)?;
                let p: f64 = v.parse().unwrap_or(f64::NAN);
                if !(0.0..=1.0).contains(&p) {
                    return Err(ArgError::InvalidValue {
                        flag: arg.to_string(),
                        value: v,
                        want: "a probability in [0, 1]",
                    });
                }
                if arg == "--inject-panics" {
                    out.inject_panics = p;
                } else {
                    out.inject_stalls = p;
                }
            }
            "--calibrate" => out.calibrate = Some(value_for(arg)?),
            "--merge" => out
                .merge
                .extend(value_for(arg)?.split(',').map(|p| p.trim().to_string())),
            "--serve" => out.serve = Some(value_for(arg)?),
            "--worker" => out.worker = Some(value_for(arg)?),
            "--lease" => {
                let v = value_for(arg)?;
                let secs: f64 = v.parse().unwrap_or(f64::NAN);
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err(ArgError::InvalidValue {
                        flag: arg.to_string(),
                        value: v,
                        want: "a positive lease duration in seconds",
                    });
                }
                out.lease = Some(secs);
            }
            "--wire-faults" => {
                let v = value_for(arg)?;
                out.wire_faults = Some(v.parse().map_err(|_| ArgError::InvalidValue {
                    flag: arg.to_string(),
                    value: v,
                    want: "a fault-stream seed (u64)",
                })?);
            }
            other if other.starts_with('-') => {
                return Err(ArgError::UnknownOption(other.to_string()));
            }
            name => out.experiments.push(name.to_string()),
        }
    }
    if let Some(n) = replications {
        let base = out.seeds.first().copied().unwrap_or(42);
        out.seeds = (0..n as u64).map(|i| base.wrapping_add(i)).collect();
    }
    if out.shard.is_some() && !out.merge.is_empty() {
        return Err(ArgError::Conflict(
            "--shard and --merge are mutually exclusive",
        ));
    }
    if subruns.is_some() && no_subruns {
        return Err(ArgError::Conflict(
            "--subruns and --no-subruns are mutually exclusive",
        ));
    }
    if out.keep_going && out.fail_fast {
        return Err(ArgError::Conflict(
            "--keep-going and --fail-fast are mutually exclusive",
        ));
    }
    if out.resume && out.checkpoint.is_none() {
        return Err(ArgError::Conflict(
            "--resume requires --checkpoint (the journal to resume from)",
        ));
    }
    if out.serve.is_some() && out.worker.is_some() {
        return Err(ArgError::Conflict(
            "--serve and --worker are mutually exclusive (one process is one side)",
        ));
    }
    if (out.serve.is_some() || out.worker.is_some()) && out.shard.is_some() {
        return Err(ArgError::Conflict(
            "--serve/--worker and --shard are mutually exclusive (the coordinator replaces static sharding)",
        ));
    }
    if (out.serve.is_some() || out.worker.is_some()) && !out.merge.is_empty() {
        return Err(ArgError::Conflict(
            "--serve/--worker and --merge are mutually exclusive",
        ));
    }
    if out.lease.is_some() && out.serve.is_none() {
        return Err(ArgError::Conflict(
            "--lease requires --serve (the coordinator owns the leases)",
        ));
    }
    if out.wire_faults.is_some() && out.worker.is_none() {
        return Err(ArgError::Conflict(
            "--wire-faults requires --worker (faults are injected client-side)",
        ));
    }
    if out.worker.is_some() && out.checkpoint.is_some() {
        return Err(ArgError::Conflict(
            "--checkpoint/--resume run on the coordinator, not with --worker",
        ));
    }
    out.subruns = subruns.unwrap_or(0);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let a = parse_args::<&str>(&[]).unwrap();
        assert_eq!(a, FiguresArgs::default());
        assert_eq!(a.balance, BalanceMode::Stride);
    }

    #[test]
    fn flags_and_positionals() {
        let a = parse_args(&["--quick", "fig2", "fig7", "--threads", "3"]).unwrap();
        assert!(a.quick);
        assert_eq!(a.threads, 3);
        assert_eq!(a.experiments, ["fig2", "fig7"]);
    }

    #[test]
    fn explicit_seed_list() {
        let a = parse_args(&["--seeds", "7,8,9"]).unwrap();
        assert_eq!(a.seeds, [7, 8, 9]);
    }

    #[test]
    fn replications_expand_from_base_seed() {
        let a = parse_args(&["--seeds", "100", "--replications", "4"]).unwrap();
        assert_eq!(a.seeds, [100, 101, 102, 103]);
        // Order independence: -r before -s expands the same way.
        let b = parse_args(&["-r", "4", "-s", "100"]).unwrap();
        assert_eq!(b.seeds, a.seeds);
        // No --seeds: replications expand from the default base 42.
        let c = parse_args(&["-r", "3"]).unwrap();
        assert_eq!(c.seeds, [42, 43, 44]);
    }

    #[test]
    fn errors_are_typed() {
        assert_eq!(
            parse_args(&["--seeds"]).unwrap_err(),
            ArgError::MissingValue("--seeds".into())
        );
        assert!(matches!(
            parse_args(&["--seeds", "x"]).unwrap_err(),
            ArgError::InvalidValue { .. }
        ));
        assert!(matches!(
            parse_args(&["--replications", "0"]).unwrap_err(),
            ArgError::InvalidValue { .. }
        ));
        assert_eq!(
            parse_args(&["--bogus"]).unwrap_err(),
            ArgError::UnknownOption("--bogus".into())
        );
        // Every variant renders a one-line message.
        for args in [
            vec!["--seeds"],
            vec!["--seeds", "x"],
            vec!["--bogus"],
            vec!["--shard", "0/4"],
            vec!["--shard", "1/2", "--merge", "a"],
        ] {
            let msg = parse_args(&args).unwrap_err().to_string();
            assert!(!msg.is_empty() && !msg.contains('\n'), "{msg}");
        }
    }

    #[test]
    fn shard_spec_parses_one_based() {
        let a = parse_args(&["--shard", "2/8", "fig3"]).unwrap();
        assert_eq!(a.shard, Some((2, 8)));
        assert_eq!(parse_args(&["--shard", "8/8"]).unwrap().shard, Some((8, 8)));
    }

    /// The satellite contract: out-of-range shard indices (i = 0, i > n,
    /// n = 0) are rejected *here*, with a typed error carrying the
    /// offending values, never reaching the executor's asserts.
    #[test]
    fn shard_out_of_range_is_a_typed_error() {
        assert_eq!(
            parse_args(&["--shard", "0/8"]).unwrap_err(),
            ArgError::ShardOutOfRange { index: 0, of: 8 }
        );
        assert_eq!(
            parse_args(&["--shard", "9/8"]).unwrap_err(),
            ArgError::ShardOutOfRange { index: 9, of: 8 }
        );
        assert_eq!(
            parse_args(&["--shard", "1/0"]).unwrap_err(),
            ArgError::ShardOutOfRange { index: 1, of: 0 }
        );
        for malformed in ["2", "a/b", "", "1/2/3", "-1/2"] {
            assert!(
                matches!(
                    parse_args(&["--shard", malformed]).unwrap_err(),
                    ArgError::InvalidValue { .. }
                ),
                "`{malformed}`"
            );
        }
    }

    #[test]
    fn balance_timings_and_calibrate_parse() {
        let a = parse_args(&[
            "--balance",
            "cost",
            "--timings",
            "t.json",
            "--calibrate",
            "prev.json",
        ])
        .unwrap();
        assert_eq!(a.balance, BalanceMode::Cost);
        assert_eq!(a.timings_out.as_deref(), Some("t.json"));
        assert_eq!(a.calibrate.as_deref(), Some("prev.json"));
        assert_eq!(
            parse_args(&["--balance", "stride"]).unwrap().balance,
            BalanceMode::Stride
        );
        assert!(matches!(
            parse_args(&["--balance", "random"]).unwrap_err(),
            ArgError::InvalidValue { .. }
        ));
    }

    #[test]
    fn metrics_and_progress_parse() {
        let a = parse_args(&["--metrics", "m.json", "--progress", "fig2"]).unwrap();
        assert_eq!(a.metrics_out.as_deref(), Some("m.json"));
        assert!(a.progress);
        assert_eq!(a.experiments, ["fig2"]);
        let b = parse_args::<&str>(&[]).unwrap();
        assert_eq!(b.metrics_out, None);
        assert!(!b.progress);
        assert_eq!(
            parse_args(&["--metrics"]).unwrap_err(),
            ArgError::MissingValue("--metrics".into())
        );
    }

    #[test]
    fn subruns_parse_and_conflict() {
        // Off by default, and --no-subruns keeps it off explicitly.
        assert_eq!(parse_args::<&str>(&[]).unwrap().subruns, 0);
        assert_eq!(parse_args(&["--no-subruns"]).unwrap().subruns, 0);
        assert_eq!(parse_args(&["--subruns", "4"]).unwrap().subruns, 4);
        for bad in ["0", "1", "x", "-2"] {
            assert!(
                matches!(
                    parse_args(&["--subruns", bad]).unwrap_err(),
                    ArgError::InvalidValue { .. }
                ),
                "`{bad}`"
            );
        }
        assert_eq!(
            parse_args(&["--subruns", "4", "--no-subruns"]).unwrap_err(),
            ArgError::Conflict("--subruns and --no-subruns are mutually exclusive")
        );
    }

    #[test]
    fn merge_files_accumulate_across_flags_and_commas() {
        let a = parse_args(&["--merge", "a.txt,b.txt", "--merge", "c.txt"]).unwrap();
        assert_eq!(a.merge, ["a.txt", "b.txt", "c.txt"]);
    }

    #[test]
    fn shard_and_merge_are_mutually_exclusive() {
        assert_eq!(
            parse_args(&["--shard", "1/2", "--merge", "a.txt"]).unwrap_err(),
            ArgError::Conflict("--shard and --merge are mutually exclusive")
        );
    }

    #[test]
    fn fault_tolerance_flags_parse() {
        let a = parse_args(&[
            "--keep-going",
            "--retry",
            "2",
            "--task-timeout",
            "1.5",
            "--inject-panics",
            "0.3",
            "--inject-stalls",
            "0.1",
            "fig2",
        ])
        .unwrap();
        assert!(a.keep_going && !a.fail_fast);
        assert_eq!(a.retry, 2);
        assert_eq!(a.task_timeout, Some(1.5));
        assert_eq!(a.inject_panics, 0.3);
        assert_eq!(a.inject_stalls, 0.1);
        // Defaults: everything off, exactly today's behavior.
        let d = parse_args::<&str>(&[]).unwrap();
        assert!(!d.keep_going && !d.fail_fast && !d.resume);
        assert_eq!((d.retry, d.task_timeout, d.checkpoint), (0, None, None));
        assert_eq!((d.inject_panics, d.inject_stalls), (0.0, 0.0));
        // Explicit fail-fast parses alone.
        assert!(parse_args(&["--fail-fast"]).unwrap().fail_fast);
        // Bad values are typed.
        for bad in [
            vec!["--retry", "x"],
            vec!["--task-timeout", "0"],
            vec!["--task-timeout", "-1"],
            vec!["--task-timeout", "nope"],
            vec!["--inject-panics", "1.5"],
            vec!["--inject-stalls", "-0.1"],
        ] {
            assert!(
                matches!(parse_args(&bad).unwrap_err(), ArgError::InvalidValue { .. }),
                "{bad:?}"
            );
        }
    }

    /// The satellite contract: `--resume` without `--checkpoint` and
    /// `--keep-going` with `--fail-fast` are typed conflicts.
    #[test]
    fn fault_tolerance_conflicts_are_typed() {
        assert_eq!(
            parse_args(&["--keep-going", "--fail-fast"]).unwrap_err(),
            ArgError::Conflict("--keep-going and --fail-fast are mutually exclusive")
        );
        assert_eq!(
            parse_args(&["--resume"]).unwrap_err(),
            ArgError::Conflict("--resume requires --checkpoint (the journal to resume from)")
        );
        // With the journal named, --resume is fine.
        let a = parse_args(&["--checkpoint", "j.log", "--resume"]).unwrap();
        assert_eq!(a.checkpoint.as_deref(), Some("j.log"));
        assert!(a.resume);
    }

    #[test]
    fn short_flags() {
        let a = parse_args(&["-q", "-l", "-h", "-t", "2"]).unwrap();
        assert!(a.quick && a.list && a.help);
        assert_eq!(a.threads, 2);
    }

    #[test]
    fn coordinator_flags_parse() {
        let a = parse_args(&["--serve", "0.0.0.0:7070", "--lease", "2.5", "fig3"]).unwrap();
        assert_eq!(a.serve.as_deref(), Some("0.0.0.0:7070"));
        assert_eq!(a.lease, Some(2.5));
        let b = parse_args(&["--worker", "host:7070", "--wire-faults", "99"]).unwrap();
        assert_eq!(b.worker.as_deref(), Some("host:7070"));
        assert_eq!(b.wire_faults, Some(99));
        // Defaults: neither role, lease unset (the binary applies 10 s).
        let d = parse_args::<&str>(&[]).unwrap();
        assert_eq!(
            (d.serve, d.worker, d.lease, d.wire_faults),
            (None, None, None, None)
        );
        // Bad values are typed.
        for bad in [
            vec!["--lease", "0"],
            vec!["--lease", "-1"],
            vec!["--lease", "x"],
            vec!["--wire-faults", "nope"],
        ] {
            assert!(
                matches!(parse_args(&bad).unwrap_err(), ArgError::InvalidValue { .. }),
                "{bad:?}"
            );
        }
        assert_eq!(
            parse_args(&["--serve"]).unwrap_err(),
            ArgError::MissingValue("--serve".into())
        );
    }

    /// The coordinated-mode contract: role, sharding, and journal flags
    /// that cannot be combined are typed conflicts, and dependent flags
    /// name their prerequisite.
    #[test]
    fn coordinator_conflicts_are_typed() {
        for (args, needle) in [
            (
                vec!["--serve", "a:1", "--worker", "b:1"],
                "--serve and --worker",
            ),
            (vec!["--serve", "a:1", "--shard", "1/2"], "--shard"),
            (vec!["--worker", "a:1", "--shard", "1/2"], "--shard"),
            (vec!["--serve", "a:1", "--merge", "s.txt"], "--merge"),
            (vec!["--lease", "5"], "--lease requires --serve"),
            (
                vec!["--worker", "a:1", "--lease", "5"],
                "--lease requires --serve",
            ),
            (
                vec!["--wire-faults", "7"],
                "--wire-faults requires --worker",
            ),
            (
                vec!["--serve", "a:1", "--wire-faults", "7"],
                "--wire-faults requires --worker",
            ),
            (
                vec!["--worker", "a:1", "--checkpoint", "j.log"],
                "--checkpoint/--resume run on the coordinator",
            ),
        ] {
            match parse_args(&args).unwrap_err() {
                ArgError::Conflict(msg) => assert!(msg.contains(needle), "{args:?}: {msg}"),
                other => panic!("{args:?}: expected conflict, got {other:?}"),
            }
        }
        // The journal flags are fine on the coordinator side.
        let a = parse_args(&["--serve", "a:1", "--checkpoint", "j.log", "--resume"]).unwrap();
        assert!(a.resume && a.serve.is_some());
    }
}
