//! Argument parsing for the `figures` binary.
//!
//! A small hand-rolled parser (the build environment has no crates.io
//! access, so `clap` cannot be vendored) covering exactly the surface the
//! binary needs: `--quick`, `--seeds`, `--replications`, `--threads`,
//! `--list`, `--help`, and positional experiment names. Parsing is pure —
//! errors come back as `Err(String)` so both the binary and the unit
//! tests can exercise every path.

/// Parsed command line for the `figures` binary.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FiguresArgs {
    /// Experiment names to run (empty = caller's default set).
    pub experiments: Vec<String>,
    /// Shorter runs for smoke-testing.
    pub quick: bool,
    /// Replication seeds (empty = each figure's configured seed).
    pub seeds: Vec<u64>,
    /// Worker threads; `0` = one per core.
    pub threads: usize,
    /// Run only shard `i` of `n` of every sweep (1-based `i`), printing
    /// encoded shard payloads instead of tables.
    pub shard: Option<(usize, usize)>,
    /// Shard payload files to merge instead of simulating.
    pub merge: Vec<String>,
    /// Print the experiment list and exit.
    pub list: bool,
    /// Print usage and exit.
    pub help: bool,
}

/// Usage text for `--help`.
pub const USAGE: &str = "\
figures — regenerate the paper's tables and figures

USAGE:
    figures [OPTIONS] [EXPERIMENT]...

ARGS:
    [EXPERIMENT]...      experiment names (`all` or empty = everything);
                         use --list to enumerate

OPTIONS:
    -q, --quick              shorter runs (smoke-test scale)
    -s, --seeds LIST         comma-separated replication seeds
                             [default: each figure's configured seed (42)]
    -r, --replications N     run N replications seeded base, base+1, ...
                             (base = first --seeds value, or 42); tables
                             then print mean ±95% CI half-width per cell
    -t, --threads N          worker threads, 0 = one per core [default: 0]
        --shard I/N          run only the I-th of N strided task slices
                             (I is 1-based) and print encoded shard
                             payloads to stdout instead of tables;
                             redirect each shard's stdout to a file
        --merge FILES        comma-separated shard payload files; merge
                             them (running no sweep tasks) and print the
                             tables, byte-identical to an unsharded run
                             under the same flags; repeatable. Reports
                             that resolve MPLs while building their plan
                             (fig11-13, ablation_policy) repeat that
                             deterministic search locally
    -l, --list               list experiment names and exit
    -h, --help               print this help and exit

Sharded sweeps: run each `--shard i/N` (same flags otherwise) on any
mix of processes or hosts, collect the outputs, then `--merge` them:

    figures --quick --shard 1/2 fig3 > s1.txt
    figures --quick --shard 2/2 fig3 > s2.txt
    figures --quick --merge s1.txt,s2.txt fig3
";

fn parse_shard(v: &str) -> Result<(usize, usize), String> {
    let err = || format!("invalid shard `{v}` (want e.g. `2/8`, 1-based)");
    let (i, n) = v.split_once('/').ok_or_else(err)?;
    let i: usize = i.trim().parse().map_err(|_| err())?;
    let n: usize = n.trim().parse().map_err(|_| err())?;
    if i == 0 || n == 0 || i > n {
        return Err(format!(
            "shard index out of range in `{v}` (want 1 ≤ i ≤ n)"
        ));
    }
    Ok((i, n))
}

fn parse_u64_list(v: &str) -> Result<Vec<u64>, String> {
    let seeds: Result<Vec<u64>, _> = v.split(',').map(|s| s.trim().parse::<u64>()).collect();
    match seeds {
        Ok(s) if !s.is_empty() => Ok(s),
        _ => Err(format!("invalid seed list `{v}` (want e.g. `42,43,44`)")),
    }
}

/// Parse the argument vector (without the program name).
pub fn parse_args<S: AsRef<str>>(args: &[S]) -> Result<FiguresArgs, String> {
    let mut out = FiguresArgs::default();
    let mut replications: Option<usize> = None;
    let mut it = args.iter().map(AsRef::as_ref);
    while let Some(arg) = it.next() {
        let mut value_for = |flag: &str| {
            it.next()
                .map(str::to_string)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg {
            "-q" | "--quick" => out.quick = true,
            "-l" | "--list" => out.list = true,
            "-h" | "--help" => out.help = true,
            "-s" | "--seeds" => out.seeds = parse_u64_list(&value_for(arg)?)?,
            "-r" | "--replications" => {
                let v = value_for(arg)?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("invalid replication count `{v}`"))?;
                if n == 0 {
                    return Err("--replications must be at least 1".into());
                }
                replications = Some(n);
            }
            "-t" | "--threads" => {
                let v = value_for(arg)?;
                out.threads = v
                    .parse()
                    .map_err(|_| format!("invalid thread count `{v}`"))?;
            }
            "--shard" => out.shard = Some(parse_shard(&value_for(arg)?)?),
            "--merge" => out
                .merge
                .extend(value_for(arg)?.split(',').map(|p| p.trim().to_string())),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}` (see --help)"));
            }
            name => out.experiments.push(name.to_string()),
        }
    }
    if let Some(n) = replications {
        let base = out.seeds.first().copied().unwrap_or(42);
        out.seeds = (0..n as u64).map(|i| base.wrapping_add(i)).collect();
    }
    if out.shard.is_some() && !out.merge.is_empty() {
        return Err("--shard and --merge are mutually exclusive".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let a = parse_args::<&str>(&[]).unwrap();
        assert_eq!(a, FiguresArgs::default());
    }

    #[test]
    fn flags_and_positionals() {
        let a = parse_args(&["--quick", "fig2", "fig7", "--threads", "3"]).unwrap();
        assert!(a.quick);
        assert_eq!(a.threads, 3);
        assert_eq!(a.experiments, ["fig2", "fig7"]);
    }

    #[test]
    fn explicit_seed_list() {
        let a = parse_args(&["--seeds", "7,8,9"]).unwrap();
        assert_eq!(a.seeds, [7, 8, 9]);
    }

    #[test]
    fn replications_expand_from_base_seed() {
        let a = parse_args(&["--seeds", "100", "--replications", "4"]).unwrap();
        assert_eq!(a.seeds, [100, 101, 102, 103]);
        // Order independence: -r before -s expands the same way.
        let b = parse_args(&["-r", "4", "-s", "100"]).unwrap();
        assert_eq!(b.seeds, a.seeds);
        // No --seeds: replications expand from the default base 42.
        let c = parse_args(&["-r", "3"]).unwrap();
        assert_eq!(c.seeds, [42, 43, 44]);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_args(&["--seeds"]).is_err());
        assert!(parse_args(&["--seeds", "x"]).is_err());
        assert!(parse_args(&["--replications", "0"]).is_err());
        assert!(parse_args(&["--bogus"]).is_err());
    }

    #[test]
    fn shard_spec_parses_one_based() {
        let a = parse_args(&["--shard", "2/8", "fig3"]).unwrap();
        assert_eq!(a.shard, Some((2, 8)));
        assert_eq!(parse_args(&["--shard", "8/8"]).unwrap().shard, Some((8, 8)));
        for bad in ["0/8", "9/8", "2", "a/b", "2/0", ""] {
            assert!(parse_args(&["--shard", bad]).is_err(), "`{bad}`");
        }
    }

    #[test]
    fn merge_files_accumulate_across_flags_and_commas() {
        let a = parse_args(&["--merge", "a.txt,b.txt", "--merge", "c.txt"]).unwrap();
        assert_eq!(a.merge, ["a.txt", "b.txt", "c.txt"]);
    }

    #[test]
    fn shard_and_merge_are_mutually_exclusive() {
        assert!(parse_args(&["--shard", "1/2", "--merge", "a.txt"]).is_err());
    }

    #[test]
    fn short_flags() {
        let a = parse_args(&["-q", "-l", "-h", "-t", "2"]).unwrap();
        assert!(a.quick && a.list && a.help);
        assert_eq!(a.threads, 2);
    }
}
