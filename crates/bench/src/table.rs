//! The shared report builder: sweep results → pivoted text tables.
//!
//! Every simulation-backed figure renders through [`pivot_table`]: rows
//! are the distinct `Scenario::row` labels (curves, setups, schemes),
//! columns are [`Col`] specs naming a `Scenario::col` label and a metric,
//! and each cell aggregates that metric over the scenario's replications —
//! printed as `mean ±hw` (95% Student-t) once there is more than one seed.
//!
//! One builder instead of fifteen hand-rolled loops: a new figure is a
//! plan plus a column list.

use crate::fmt::table;
use xsched_core::ScenarioResult;
use xsched_sim::Welford;

/// Formatting function for a scalar cell value.
pub type Fmt = fn(f64) -> String;

/// One output column: which scenario column it reads, which metric, how
/// it is labelled and formatted.
#[derive(Clone)]
pub struct Col {
    /// `Scenario::col` label this column selects (empty string selects
    /// scenarios with an empty col label — the row-per-scenario shape).
    pub col: String,
    /// Metric name as reported by `ScenarioOutcome::metrics`.
    pub metric: &'static str,
    /// Column header.
    pub header: String,
    /// Cell formatter.
    pub fmt: Fmt,
}

impl Col {
    /// A column reading `metric` from scenarios labelled `col`.
    pub fn new(
        col: impl Into<String>,
        metric: &'static str,
        header: impl Into<String>,
        fmt: Fmt,
    ) -> Col {
        Col {
            col: col.into(),
            metric,
            header: header.into(),
            fmt,
        }
    }

    /// A column for row-per-scenario tables (empty `col` selector).
    pub fn metric(metric: &'static str, header: impl Into<String>, fmt: Fmt) -> Col {
        Col::new("", metric, header, fmt)
    }
}

/// Render one aggregated cell: the replication mean, with `±half-width`
/// appended when ≥ 2 replications make the Student-t interval finite.
fn cell(w: Option<&Welford>, fmt: Fmt) -> String {
    match w {
        None => "-".to_string(),
        Some(w) if w.count() < 2 => fmt(w.mean()),
        Some(w) => {
            let ci = w.confidence_interval(0.95);
            format!("{} ±{}", fmt(ci.mean), fmt(ci.half_width))
        }
    }
}

/// Pivot sweep results into a text table.
///
/// `stub` is the header of the leading label column. Row order follows
/// first appearance in `results`, which follows plan order — reports are
/// deterministic.
pub fn pivot_table(stub: &str, results: &[ScenarioResult], cols: &[Col]) -> String {
    let mut row_labels: Vec<&str> = Vec::new();
    for r in results {
        let label = r.scenario.row.as_str();
        if !row_labels.contains(&label) {
            row_labels.push(label);
        }
    }

    let lookup = |row: &str, col: &Col| -> Option<&Welford> {
        results
            .iter()
            .find(|r| r.scenario.row == row && r.scenario.col == col.col)
            .and_then(|r| r.reps.get(col.metric))
    };

    let rows: Vec<Vec<String>> = row_labels
        .iter()
        .map(|row| {
            let mut cells = vec![row.to_string()];
            cells.extend(cols.iter().map(|c| cell(lookup(row, c), c.fmt)));
            cells
        })
        .collect();

    let mut headers: Vec<&str> = vec![stub];
    headers.extend(cols.iter().map(|c| c.header.as_str()));
    table(&headers, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fmt::f1;
    use xsched_core::{RunConfig, Scenario, SweepExecutor, SweepPlan};
    use xsched_workload::setup;

    fn tiny_results(seeds: usize) -> Vec<ScenarioResult> {
        let rc = RunConfig {
            warmup_txns: 30,
            measured_txns: 150,
            ..Default::default()
        };
        let scenarios = vec![
            Scenario::tput("curve", setup(1), 1, rc.clone()),
            Scenario::tput("curve", setup(1), 5, rc),
        ];
        SweepExecutor::parallel(0).run(&SweepPlan::new(scenarios).replicated(seeds, 42))
    }

    #[test]
    fn single_seed_cells_are_point_estimates() {
        let t = pivot_table(
            "curve",
            &tiny_results(1),
            &[
                Col::new("MPL 1", "throughput", "MPL 1", f1),
                Col::new("MPL 5", "throughput", "MPL 5", f1),
            ],
        );
        assert!(t.contains("curve"));
        assert!(
            !t.contains('±'),
            "one replication must not print a CI:\n{t}"
        );
    }

    #[test]
    fn replicated_cells_carry_confidence_intervals() {
        let t = pivot_table(
            "curve",
            &tiny_results(3),
            &[Col::new("MPL 5", "throughput", "MPL 5", f1)],
        );
        assert!(t.contains('±'), "3 replications must print CIs:\n{t}");
    }

    #[test]
    fn missing_cells_render_as_dash() {
        let t = pivot_table(
            "curve",
            &tiny_results(1),
            &[Col::new("MPL 99", "throughput", "MPL 99", f1)],
        );
        assert!(t.lines().nth(2).unwrap().trim().ends_with('-'));
    }
}
