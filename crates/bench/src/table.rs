//! The shared report builder: sweep results → pivoted text tables.
//!
//! Every simulation-backed figure renders through [`pivot_table`]: rows
//! are the distinct `Scenario::row` labels (curves, setups, schemes),
//! columns are [`Col`] specs naming a `Scenario::col` label and a metric,
//! and each cell aggregates that metric over the scenario's replications —
//! printed as `mean ±hw` (95% Student-t) once there is more than one seed.
//!
//! One builder instead of fifteen hand-rolled loops: a new figure is a
//! plan plus a column list.

use crate::fmt::table;
use xsched_core::ScenarioResult;

/// Formatting function for a scalar cell value.
pub type Fmt = fn(f64) -> String;

/// One output column: which scenario column it reads, which metric, how
/// it is labelled and formatted.
#[derive(Clone)]
pub struct Col {
    /// `Scenario::col` label this column selects (empty string selects
    /// scenarios with an empty col label — the row-per-scenario shape).
    pub col: String,
    /// Metric name as reported by `ScenarioOutcome::metrics`.
    pub metric: &'static str,
    /// Column header.
    pub header: String,
    /// Cell formatter.
    pub fmt: Fmt,
}

impl Col {
    /// A column reading `metric` from scenarios labelled `col`.
    pub fn new(
        col: impl Into<String>,
        metric: &'static str,
        header: impl Into<String>,
        fmt: Fmt,
    ) -> Col {
        Col {
            col: col.into(),
            metric,
            header: header.into(),
            fmt,
        }
    }

    /// A column for row-per-scenario tables (empty `col` selector).
    pub fn metric(metric: &'static str, header: impl Into<String>, fmt: Fmt) -> Col {
        Col::new("", metric, header, fmt)
    }
}

/// Render one aggregated cell: the replication mean, with `±half-width`
/// appended when ≥ 2 replications make the Student-t interval finite.
///
/// Failure semantics (keep-going sweeps): a cell whose every replication
/// failed renders `FAILED`; a cell where some replications failed renders
/// the surviving mean with a trailing `!` — marked, never silently
/// averaged away.
fn cell(r: Option<&ScenarioResult>, metric: &str, fmt: Fmt) -> String {
    let Some(r) = r else {
        return "-".to_string();
    };
    if !r.failures.is_empty() && r.outcomes.is_empty() {
        return "FAILED".to_string();
    }
    let mark = if r.failures.is_empty() { "" } else { "!" };
    match r.reps.get(metric) {
        None => "-".to_string(),
        Some(w) if w.count() < 2 => format!("{}{mark}", fmt(w.mean())),
        Some(w) => {
            let ci = w.confidence_interval(0.95);
            format!("{} ±{}{mark}", fmt(ci.mean), fmt(ci.half_width))
        }
    }
}

/// Pivot sweep results into a text table.
///
/// `stub` is the header of the leading label column. Row order follows
/// first appearance in `results`, which follows plan order — reports are
/// deterministic.
pub fn pivot_table(stub: &str, results: &[ScenarioResult], cols: &[Col]) -> String {
    let mut row_labels: Vec<&str> = Vec::new();
    for r in results {
        let label = r.scenario.row.as_str();
        if !row_labels.contains(&label) {
            row_labels.push(label);
        }
    }

    let lookup = |row: &str, col: &Col| -> Option<&ScenarioResult> {
        results
            .iter()
            .find(|r| r.scenario.row == row && r.scenario.col == col.col)
    };

    let rows: Vec<Vec<String>> = row_labels
        .iter()
        .map(|row| {
            let mut cells = vec![row.to_string()];
            cells.extend(cols.iter().map(|c| cell(lookup(row, c), c.metric, c.fmt)));
            cells
        })
        .collect();

    let mut headers: Vec<&str> = vec![stub];
    headers.extend(cols.iter().map(|c| c.header.as_str()));
    table(&headers, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fmt::f1;
    use xsched_core::{
        FaultInjector, FaultPolicy, RunConfig, Scenario, SweepExecutor, SweepPlan, TaskError,
        TaskFailure,
    };
    use xsched_workload::setup;

    fn tiny_results(seeds: usize) -> Vec<ScenarioResult> {
        let rc = RunConfig {
            warmup_txns: 30,
            measured_txns: 150,
            ..Default::default()
        };
        let scenarios = vec![
            Scenario::tput("curve", setup(1), 1, rc.clone()),
            Scenario::tput("curve", setup(1), 5, rc),
        ];
        SweepExecutor::parallel(0).run(&SweepPlan::new(scenarios).replicated(seeds, 42))
    }

    #[test]
    fn single_seed_cells_are_point_estimates() {
        let t = pivot_table(
            "curve",
            &tiny_results(1),
            &[
                Col::new("MPL 1", "throughput", "MPL 1", f1),
                Col::new("MPL 5", "throughput", "MPL 5", f1),
            ],
        );
        assert!(t.contains("curve"));
        assert!(
            !t.contains('±'),
            "one replication must not print a CI:\n{t}"
        );
    }

    #[test]
    fn replicated_cells_carry_confidence_intervals() {
        let t = pivot_table(
            "curve",
            &tiny_results(3),
            &[Col::new("MPL 5", "throughput", "MPL 5", f1)],
        );
        assert!(t.contains('±'), "3 replications must print CIs:\n{t}");
    }

    #[test]
    fn missing_cells_render_as_dash() {
        let t = pivot_table(
            "curve",
            &tiny_results(1),
            &[Col::new("MPL 99", "throughput", "MPL 99", f1)],
        );
        assert!(t.lines().nth(2).unwrap().trim().ends_with('-'));
    }

    #[test]
    fn fully_failed_cells_render_failed() {
        let policy = FaultPolicy {
            keep_going: true,
            injector: Some(FaultInjector {
                p_panic: 1.0,
                p_stall: 0.0,
                stall_secs: 0.0,
            }),
            ..Default::default()
        };
        let rc = RunConfig {
            warmup_txns: 30,
            measured_txns: 150,
            ..Default::default()
        };
        let scenarios = vec![Scenario::tput("curve", setup(1), 1, rc)];
        let results = SweepExecutor::serial()
            .with_faults(policy)
            .run(&SweepPlan::new(scenarios).replicated(2, 42));
        let t = pivot_table(
            "curve",
            &results,
            &[Col::new("MPL 1", "throughput", "MPL 1", f1)],
        );
        assert!(
            t.contains("FAILED"),
            "an all-failures cell must render FAILED, not average nothing:\n{t}"
        );
    }

    #[test]
    fn partially_failed_cells_are_marked() {
        let mut results = tiny_results(2);
        results[0].failures.push(TaskFailure {
            error: TaskError::Timeout(1.0),
            attempts: 2,
        });
        let t = pivot_table(
            "curve",
            &results,
            &[
                Col::new("MPL 1", "throughput", "MPL 1", f1),
                Col::new("MPL 5", "throughput", "MPL 5", f1),
            ],
        );
        let row = t.lines().nth(2).unwrap();
        assert!(
            row.contains('!'),
            "a cell with surviving and failed replications must carry `!`:\n{t}"
        );
        assert!(
            !t.contains("FAILED"),
            "survivors still render a value:\n{t}"
        );
    }
}
