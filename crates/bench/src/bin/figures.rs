//! Regenerate the paper's tables and figures through the sweep layer.
//!
//! ```text
//! cargo run --release -p xsched-bench --bin figures -- all
//! cargo run --release -p xsched-bench --bin figures -- fig2 fig7
//! cargo run --release -p xsched-bench --bin figures -- --quick all
//! cargo run --release -p xsched-bench --bin figures -- --replications 5 fig2
//! cargo run --release -p xsched-bench --bin figures -- --seeds 7,8,9 --threads 4 fig11a
//! ```
//!
//! With more than one replication seed every table cell prints
//! `mean ±95% CI half-width` over the replications; sweeps always fan out
//! across the worker pool (`--threads`, default one per core).

use xsched_bench::cli::{parse_args, USAGE};
use xsched_bench::*;
use xsched_core::RunConfig;

const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "c2",
    "rt_open",
    "fig7",
    "fig9",
    "fig10",
    "controller",
    "ablation_jumpstart",
    "fig11a",
    "fig11b",
    "fig12",
    "fig13",
    "ablation_policy",
    "ablation_dbms",
    "crosscheck",
];

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if args.help {
        print!("{USAGE}");
        return;
    }
    if args.list {
        for name in EXPERIMENTS {
            println!("{name}");
        }
        return;
    }
    let names: Vec<&str> =
        if args.experiments.is_empty() || args.experiments.iter().any(|n| n == "all") {
            EXPERIMENTS.to_vec()
        } else {
            args.experiments.iter().map(String::as_str).collect()
        };

    let opts = SweepOpts {
        seeds: args.seeds.clone(),
        threads: args.threads,
    };
    let rc = if args.quick {
        RunConfig {
            warmup_txns: 100,
            measured_txns: 800,
            ..Default::default()
        }
    } else {
        RunConfig {
            warmup_txns: 500,
            measured_txns: 4_000,
            ..Default::default()
        }
    };
    // Controller sessions and MPL searches run many inner sims per
    // scenario; use a lighter config for them unless asked for full
    // length.
    let rc_heavy = if args.quick {
        RunConfig {
            warmup_txns: 100,
            measured_txns: 600,
            ..Default::default()
        }
    } else {
        RunConfig {
            warmup_txns: 300,
            measured_txns: 2_000,
            ..Default::default()
        }
    };

    for name in names {
        let started = std::time::Instant::now();
        let report = match name {
            "table1" => table1_report(),
            "table2" => table2_report(),
            "fig2" => fig2_report(&rc, &opts),
            "fig3" => fig3_report(&rc, &opts),
            "fig4" => fig4_report(&rc, &opts),
            "fig5" => fig5_report(&rc, &opts),
            "c2" => c2_report(),
            "rt_open" => rt_open_report(&rc_heavy, &opts),
            "fig7" => fig7_report(),
            "fig9" => fig9_report(),
            "fig10" => fig10_report(),
            "controller" => controller_report(
                &rc_heavy,
                &xsched_workload::setup_ids().collect::<Vec<_>>(),
                &opts,
            ),
            "ablation_jumpstart" => controller_ablation_report(&rc_heavy, &[1, 3, 5, 11], &opts),
            "fig11a" => fig11_report(&rc_heavy, 0.05, &opts),
            "fig11b" => fig11_report(&rc_heavy, 0.20, &opts),
            "fig12" => fig12_report(&rc_heavy, &opts),
            "fig13" => fig13_report(&rc_heavy, &opts),
            "ablation_policy" => policy_ablation_report(&rc_heavy, &opts),
            "ablation_dbms" => dbms_ablation_report(&rc_heavy, &opts),
            "crosscheck" => qbd_crosscheck_report(),
            other => {
                eprintln!("unknown experiment `{other}`; known: {EXPERIMENTS:?}");
                std::process::exit(2);
            }
        };
        println!("{report}");
        eprintln!("[{name} took {:.1}s]\n", started.elapsed().as_secs_f64());
    }
}
