//! Regenerate the paper's tables and figures through the sweep layer.
//!
//! ```text
//! cargo run --release -p xsched-bench --bin figures -- all
//! cargo run --release -p xsched-bench --bin figures -- fig2 fig7
//! cargo run --release -p xsched-bench --bin figures -- --quick all
//! cargo run --release -p xsched-bench --bin figures -- --replications 5 fig2
//! cargo run --release -p xsched-bench --bin figures -- --seeds 7,8,9 --threads 4 fig11a
//! ```
//!
//! With more than one replication seed every table cell prints
//! `mean ±95% CI half-width` over the replications; sweeps always fan out
//! across the worker pool (`--threads`, default one per core).
//!
//! Sweeps can additionally be split **across processes or hosts**: each
//! `--shard i/n` invocation simulates only its strided slice of every
//! task grid and prints encoded shard payloads, and `--merge f1,f2,…`
//! reassembles them into tables byte-identical to an unsharded run:
//!
//! ```text
//! figures --quick --shard 1/2 fig3 > s1.txt   # host A
//! figures --quick --shard 2/2 fig3 > s2.txt   # host B
//! figures --quick --merge s1.txt,s2.txt fig3  # anywhere
//! ```
//!
//! Or **coordinated** (work-stealing with lease-based fault recovery):
//! one `--serve host:port` process hands out task leases and prints the
//! merged tables; any number of `--worker host:port` processes (same
//! experiment flags) claim, execute, and stream outcomes back. Kill a
//! worker mid-sweep and its leases expire and reassign — the tables do
//! not change a byte:
//!
//! ```text
//! figures --quick --serve 0.0.0.0:7070 fig3   # prints the tables
//! figures --quick --worker hostA:7070 fig3    # as many as you like
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use xsched_bench::cli::{parse_args, USAGE};
use xsched_bench::*;
use xsched_core::cost::{decode_timings, encode_timings};
use xsched_core::shard::decode_payloads;
use xsched_core::{
    CheckpointJournal, CoordServer, CostModel, FaultInjector, FaultPolicy, FaultyTransport,
    JournalReplay, SweepObs, TcpTransport, Transport, WireFaultInjector, WorkerConfig,
};

const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "c2",
    "rt_open",
    "fig7",
    "fig9",
    "fig10",
    "controller",
    "chaos",
    "ablation_jumpstart",
    "fig11a",
    "fig11b",
    "fig12",
    "fig13",
    "ablation_policy",
    "ablation_dbms",
    "crosscheck",
];

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if args.help {
        print!("{USAGE}");
        return;
    }
    if args.list {
        for name in EXPERIMENTS {
            println!("{name}");
        }
        return;
    }
    let names: Vec<&str> =
        if args.experiments.is_empty() || args.experiments.iter().any(|n| n == "all") {
            EXPERIMENTS.to_vec()
        } else {
            args.experiments.iter().map(String::as_str).collect()
        };

    // The shard sink collects encoded payloads; in shard mode they are
    // what goes to stdout (tables are suppressed until the merge).
    let sink = Arc::new(Mutex::new(Vec::new()));
    // Raised by worker mode when the coordinator was unreachable and a
    // sweep fell back to local execution — then this process owns real
    // results and must print them.
    let degraded = Arc::new(AtomicBool::new(false));
    let mode = if let Some(addr) = &args.serve {
        let server = CoordServer::bind(addr).unwrap_or_else(|e| {
            eprintln!("error: cannot bind coordinator address `{addr}`: {e}");
            std::process::exit(2);
        });
        let bound = server
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.clone());
        eprintln!("[coordinator listening on {bound}]");
        SweepMode::Serve {
            server: Arc::new(server),
            epoch: Arc::new(AtomicU64::new(0)),
            lease_secs: args.lease.unwrap_or(10.0),
            linger_secs: 1.0,
        }
    } else if let Some(addr) = &args.worker {
        let tcp = TcpTransport::new(addr, Duration::from_secs(5));
        let transport: Arc<dyn Transport> = match args.wire_faults {
            Some(seed) => {
                eprintln!("[wire-fault injection on, seed {seed}]");
                Arc::new(FaultyTransport::new(tcp, WireFaultInjector::chaos(seed)))
            }
            None => Arc::new(tcp),
        };
        SweepMode::Worker {
            transport,
            epoch: Arc::new(AtomicU64::new(0)),
            config: Arc::new(WorkerConfig::new(&format!("w{}", std::process::id()))),
            degraded: Arc::clone(&degraded),
        }
    } else if let Some((i, n)) = args.shard {
        SweepMode::Shard {
            index: i - 1, // CLI is 1-based, the executor 0-based
            of: n,
            sink: Arc::clone(&sink),
        }
    } else if !args.merge.is_empty() {
        let mut pool = Vec::new();
        for path in &args.merge {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("error: cannot read shard file `{path}`: {e}");
                std::process::exit(2);
            });
            pool.extend(decode_payloads(&text).unwrap_or_else(|e| {
                eprintln!("error: bad shard payload in `{path}`: {e}");
                std::process::exit(2);
            }));
        }
        SweepMode::Merge {
            pool: Arc::new(pool),
        }
    } else {
        SweepMode::Run
    };
    // Calibrate the cost model from a previous run's `--timings` dump;
    // without one, the structural model predicts from scenario shape
    // alone. Every shard of one sweep must use the same file (or none) —
    // balanced slicing is deterministic in (plan, model).
    let cost_model = args.calibrate.as_ref().map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read timings file `{path}`: {e}");
            std::process::exit(2);
        });
        let cells = decode_timings(&text).unwrap_or_else(|e| {
            eprintln!("error: bad timings file `{path}`: {e}");
            std::process::exit(2);
        });
        let model = CostModel::calibrated(&cells);
        eprintln!(
            "[calibrated {} cost buckets from {} cells in {path}]",
            model.calibrated_buckets(),
            cells.len()
        );
        Arc::new(model)
    });
    // The metrics snapshot embeds the timings section, so --metrics
    // forces cell-timing collection even without --timings.
    let timings_sink = (args.timings_out.is_some() || args.metrics_out.is_some())
        .then(|| Arc::new(Mutex::new(Vec::new())));
    let obs = args.metrics_out.as_ref().map(|_| Arc::new(SweepObs::new()));
    // Fault tolerance: any of these flags switches the executor onto the
    // guarded path (`FaultPolicy::active`); with all of them at their
    // defaults sweeps run the legacy unguarded code byte-for-byte.
    let faults = FaultPolicy {
        keep_going: args.keep_going,
        retries: args.retry,
        backoff_base_secs: 0.01,
        task_timeout_secs: args.task_timeout,
        injector: (args.inject_panics > 0.0 || args.inject_stalls > 0.0).then_some(FaultInjector {
            p_panic: args.inject_panics,
            p_stall: args.inject_stalls,
            stall_secs: 0.2,
        }),
    };
    // `--resume` replays the journal then appends new completions to it;
    // `--checkpoint` alone starts a fresh journal (truncating any old one).
    let resume = args
        .resume
        .then_some(args.checkpoint.as_ref())
        .flatten()
        .map(|path| {
            let replay = JournalReplay::load(path).unwrap_or_else(|e| {
                eprintln!("error: bad checkpoint journal `{path}`: {e}");
                std::process::exit(2);
            });
            if replay.dropped_partial() > 0 {
                eprintln!(
                    "[checkpoint `{path}`: dropped {} partial trailing record(s) from an interrupted write]",
                    replay.dropped_partial()
                );
            }
            Arc::new(replay)
        });
    let journal = args.checkpoint.as_ref().map(|path| {
        let journal = if args.resume {
            CheckpointJournal::append(path)
        } else {
            CheckpointJournal::create(path)
        };
        Arc::new(journal.unwrap_or_else(|e| {
            eprintln!("error: cannot open checkpoint journal `{path}`: {e}");
            std::process::exit(2);
        }))
    });
    let opts = SweepOpts {
        seeds: args.seeds.clone(),
        threads: args.threads,
        mode,
        balance: args.balance,
        cost_model,
        timings: timings_sink.clone(),
        obs: obs.clone(),
        progress: args.progress,
        subruns: args.subruns,
        faults,
        journal,
        resume,
    };
    let rc = if args.quick { quick_rc() } else { full_rc() };
    // Controller sessions and MPL searches run many inner sims per
    // scenario; use a lighter config for them unless asked for full
    // length.
    let rc_heavy = if args.quick {
        quick_rc_heavy()
    } else {
        full_rc_heavy()
    };

    // In merge mode a shard-payload mismatch surfaces as a panic from
    // `SweepOpts::run`; turn it into the same clean one-line error + exit 2
    // every other user-input failure uses (and silence the panic hook so
    // no backtrace noise precedes it).
    if !args.merge.is_empty() {
        std::panic::set_hook(Box::new(|_| {}));
    }

    for name in names {
        let started = std::time::Instant::now();
        let build_report = || match name {
            "table1" => table1_report(),
            "table2" => table2_report(),
            "fig2" => fig2_report(&rc, &opts),
            "fig3" => fig3_report(&rc, &opts),
            "fig4" => fig4_report(&rc, &opts),
            "fig5" => fig5_report(&rc, &opts),
            "c2" => c2_report(),
            "rt_open" => rt_open_report(&rc_heavy, &opts),
            "fig7" => fig7_report(),
            "fig9" => fig9_report(),
            "fig10" => fig10_report(),
            "controller" => controller_report(
                &rc_heavy,
                &xsched_workload::setup_ids().collect::<Vec<_>>(),
                &opts,
            ),
            "chaos" => chaos_report(&rc_heavy, &opts),
            "ablation_jumpstart" => controller_ablation_report(&rc_heavy, &[1, 3, 5, 11], &opts),
            "fig11a" => fig11_report(&rc_heavy, 0.05, &opts),
            "fig11b" => fig11_report(&rc_heavy, 0.20, &opts),
            "fig12" => fig12_report(&rc_heavy, &opts),
            "fig13" => fig13_report(&rc_heavy, &opts),
            "ablation_policy" => policy_ablation_report(&rc_heavy, &opts),
            "ablation_dbms" => dbms_ablation_report(&rc_heavy, &opts),
            "crosscheck" => qbd_crosscheck_report(),
            other => {
                eprintln!("unknown experiment `{other}`; known: {EXPERIMENTS:?}");
                std::process::exit(2);
            }
        };
        let report = if args.merge.is_empty() {
            build_report()
        } else {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(build_report)) {
                Ok(report) => report,
                Err(payload) => {
                    // Only typed shard-validation failures are user-input
                    // errors; anything else is a genuine bug and must not
                    // masquerade as one.
                    if let Some(MergeError(msg)) = payload.downcast_ref::<MergeError>() {
                        eprintln!("error: {msg}");
                        std::process::exit(2);
                    }
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "unknown panic".to_string());
                    eprintln!("internal error (not a shard-file problem): {msg}");
                    std::process::exit(101);
                }
            }
        };
        if args.shard.is_some() {
            // Shard mode: stdout carries the machine-readable payloads
            // (one per sweep this experiment executed); the rendered
            // table fragments are partial and stay unprinted. An empty
            // sink means the experiment ran no sweep (analytic/static) —
            // it renders at merge time.
            let payloads: Vec<String> = sink.lock().unwrap().drain(..).collect();
            if payloads.is_empty() {
                eprintln!("[{name} ran no sweep; it renders at merge time]");
            }
            for payload in payloads {
                println!("# experiment {name}");
                print!("{payload}");
            }
        } else if args.worker.is_some() && !degraded.load(Ordering::SeqCst) {
            // Worker mode: the coordinator holds the merged outcomes and
            // prints the tables; this side's partial renderings stay
            // unprinted. (A degraded worker ran the sweep itself and
            // prints normally.)
            eprintln!("[{name}: tables render on the coordinator]");
        } else {
            println!("{report}");
        }
        let elapsed = started.elapsed().as_secs_f64();
        if let Some(obs) = &obs {
            obs.registry()
                .gauge_add(&format!("figures.{name}.secs"), elapsed);
        }
        eprintln!("[{name} took {elapsed:.1}s]\n");
    }

    // Dump the run's per-cell timing telemetry; `--calibrate <file>` on
    // the next run fits the cost model from it.
    if let (Some(path), Some(sink)) = (&args.timings_out, &timings_sink) {
        let cells = sink.lock().unwrap();
        if let Err(e) = std::fs::write(path, encode_timings(&cells)) {
            eprintln!("error: cannot write timings file `{path}`: {e}");
            std::process::exit(2);
        }
        eprintln!("[wrote {} cell timings to {path}]", cells.len());
    }

    // The full observability snapshot: metrics registry + the timings
    // section (same schema --calibrate reads) + controller series.
    if let (Some(path), Some(obs)) = (&args.metrics_out, &obs) {
        let cells = timings_sink
            .as_ref()
            .map(|s| s.lock().unwrap().clone())
            .unwrap_or_default();
        if let Err(e) = std::fs::write(path, obs.snapshot(&cells)) {
            eprintln!("error: cannot write metrics file `{path}`: {e}");
            std::process::exit(2);
        }
        eprintln!(
            "[wrote metrics snapshot ({} cells, {} controller series) to {path}]",
            cells.len(),
            obs.controller_series().len()
        );
    }
}
