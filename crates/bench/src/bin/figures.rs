//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p xsched-bench --bin figures -- all
//! cargo run --release -p xsched-bench --bin figures -- fig2 fig7
//! cargo run --release -p xsched-bench --bin figures -- --quick all
//! ```

use xsched_bench::*;
use xsched_core::RunConfig;

const EXPERIMENTS: &[&str] = &[
    "table1", "table2", "fig2", "fig3", "fig4", "fig5", "c2", "rt_open", "fig7", "fig9", "fig10",
    "controller", "ablation_jumpstart", "fig11a", "fig11b", "fig12", "fig13",
    "ablation_policy", "ablation_dbms", "crosscheck",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let names: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let names: Vec<&str> = if names.is_empty() || names.contains(&"all") {
        EXPERIMENTS.to_vec()
    } else {
        names
    };

    let rc = if quick {
        RunConfig {
            warmup_txns: 100,
            measured_txns: 800,
            ..Default::default()
        }
    } else {
        RunConfig {
            warmup_txns: 500,
            measured_txns: 4_000,
            ..Default::default()
        }
    };
    // Controller sessions and priority experiments run many inner runs;
    // use a lighter config for them unless asked for full length.
    let rc_heavy = if quick {
        RunConfig {
            warmup_txns: 100,
            measured_txns: 600,
            ..Default::default()
        }
    } else {
        RunConfig {
            warmup_txns: 300,
            measured_txns: 2_000,
            ..Default::default()
        }
    };

    for name in names {
        let started = std::time::Instant::now();
        let report = match name {
            "table1" => table1_report(),
            "table2" => table2_report(),
            "fig2" => fig2_report(&rc),
            "fig3" => fig3_report(&rc),
            "fig4" => fig4_report(&rc),
            "fig5" => fig5_report(&rc),
            "c2" => c2_report(),
            "rt_open" => rt_open_report(&rc_heavy),
            "fig7" => fig7_report(),
            "fig9" => fig9_report(),
            "fig10" => fig10_report(),
            "controller" => controller_report(&rc_heavy, &(1..=17).collect::<Vec<_>>()),
            "ablation_jumpstart" => controller_ablation_report(&rc_heavy, &[1, 3, 5, 11]),
            "fig11a" => fig11_report(&rc_heavy, 0.05),
            "fig11b" => fig11_report(&rc_heavy, 0.20),
            "fig12" => fig12_report(&rc_heavy),
            "fig13" => fig13_report(&rc_heavy),
            "ablation_policy" => policy_ablation_report(&rc_heavy),
            "ablation_dbms" => dbms_ablation_report(&rc_heavy),
            "crosscheck" => qbd_crosscheck_report(),
            other => {
                eprintln!("unknown experiment `{other}`; known: {EXPERIMENTS:?}");
                std::process::exit(2);
            }
        };
        println!("{report}");
        eprintln!("[{name} took {:.1}s]\n", started.elapsed().as_secs_f64());
    }
}
