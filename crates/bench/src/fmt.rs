//! Minimal fixed-width table/series formatting for terminal reports.

/// Render a table: header row + data rows, columns padded to fit.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format a float with no decimals (integer-valued metrics like MPLs).
pub fn f0(x: f64) -> String {
    format!("{x:.0}")
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format seconds as milliseconds with no decimals.
pub fn ms(x: f64) -> String {
    format!("{:.0}", x * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["a", "long"],
            &[vec!["1".into(), "2".into()], vec!["100".into(), "x".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("a"));
        assert!(lines[2].ends_with("   2") || lines[2].contains("2"));
        // all rows same width
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn number_formats() {
        assert_eq!(f0(9.7), "10");
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.256), "1.26");
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(ms(0.1234), "123");
    }
}
