#![warn(missing_docs)]
//! # extsched — external transaction scheduling with a tuned MPL
//!
//! A full reimplementation of *"How to Determine a Good Multi-Programming
//! Level for External Scheduling"* (Schroeder, Harchol-Balter, Iyengar,
//! Nahum, Wierman — ICDE 2006): hold transactions in an external queue the
//! application controls, admit at most **MPL** of them into the DBMS, and
//! automatically tune that MPL to the lowest value that costs neither
//! throughput nor overall mean response time — which is exactly what makes
//! external prioritization nearly as effective as scheduling inside the
//! DBMS.
//!
//! The umbrella crate re-exports the workspace:
//!
//! * [`sim`] — deterministic discrete-event kernel, distributions, stats;
//! * [`dbms`] — the simulated transactional DBMS substrate (PS CPUs, FCFS
//!   disks, LRU buffer pool, 2PL lock manager with deadlock handling and
//!   POW);
//! * [`workload`] — TPC-C/TPC-W-style generators and the paper's 17
//!   experimental setups;
//! * [`queueing`] — exact MVA, H2 fitting, and the matrix-geometric
//!   solution of the flexible multiserver queue;
//! * [`core`] — the external scheduler, queue policies, the feedback MPL
//!   controller, and the experiment driver.
//!
//! ## Quick start
//!
//! ```
//! use extsched::core::{Driver, PolicyKind, RunConfig, Targets};
//! use extsched::workload::setup;
//!
//! // Setup 1 of the paper: TPC-C-style inventory workload, 1 CPU, 1 disk.
//! let rc = RunConfig { warmup_txns: 50, measured_txns: 300, ..Default::default() };
//! let driver = Driver::new(setup(1)).with_config(rc);
//!
//! // Let the controller find the lowest MPL within a 20% loss budget.
//! let outcome = driver.run_controller(Targets::twenty_percent());
//! assert!(outcome.converged);
//! assert!(outcome.iterations < 10); // the paper's bound
//!
//! // Run two-class priority scheduling at that MPL.
//! let run = driver.run(outcome.final_mpl, PolicyKind::Priority, &driver.saturated());
//! assert!(run.rt_high < run.rt_low); // high priority gets faster service
//! ```

pub use xsched_core as core;
pub use xsched_dbms as dbms;
pub use xsched_queueing as queueing;
pub use xsched_sim as sim;
pub use xsched_workload as workload;
