#![warn(missing_docs)]
//! # extsched — external transaction scheduling with a tuned MPL
//!
//! A full reimplementation of *"How to Determine a Good Multi-Programming
//! Level for External Scheduling"* (Schroeder, Harchol-Balter, Iyengar,
//! Nahum, Wierman — ICDE 2006): hold transactions in an external queue the
//! application controls, admit at most **MPL** of them into the DBMS, and
//! automatically tune that MPL to the lowest value that costs neither
//! throughput nor overall mean response time — which is exactly what makes
//! external prioritization nearly as effective as scheduling inside the
//! DBMS.
//!
//! The umbrella crate re-exports the workspace:
//!
//! * [`sim`] — deterministic discrete-event kernel, distributions, stats;
//! * [`dbms`] — the simulated transactional DBMS substrate (PS CPUs, FCFS
//!   disks, LRU buffer pool, 2PL lock manager with deadlock handling and
//!   POW);
//! * [`workload`] — TPC-C/TPC-W-style generators and the paper's 17
//!   experimental setups;
//! * [`queueing`] — exact MVA, H2 fitting, and the matrix-geometric
//!   solution of the flexible multiserver queue;
//! * [`core`] — the external scheduler, queue policies, the feedback MPL
//!   controller, and the experiment driver.
//!
//! ## Quick start: replicated sweeps with confidence intervals
//!
//! Experiments are [`Scenario`](core::Scenario) literals; a
//! [`SweepPlan`](core::SweepPlan) crosses them with replication seeds and
//! the [`SweepExecutor`](core::SweepExecutor) fans the grid across all
//! cores — bit-identical to running it serially.
//!
//! ```
//! use extsched::core::{RunConfig, Scenario, SweepExecutor, SweepPlan};
//! use extsched::workload::setup;
//!
//! // Setup 1 of the paper (TPC-C-style inventory, 1 CPU, 1 disk) at
//! // three MPLs, three replication seeds each, quick run lengths.
//! let rc = RunConfig { warmup_txns: 50, measured_txns: 300, ..Default::default() };
//! let scenarios = Vec::from([1, 5, 20].map(|mpl| {
//!     Scenario::tput("W_CPU-inventory", setup(1), mpl, rc.clone())
//! }));
//! let plan = SweepPlan::new(scenarios).replicated(3, 42);
//! let results = SweepExecutor::parallel(0).run(&plan);
//!
//! // Throughput rises from MPL 1 toward the knee near MPL 5 (Fig. 2)...
//! assert!(results[1].mean("throughput") > 1.5 * results[0].mean("throughput"));
//! // ...and every metric carries a Student-t confidence interval.
//! let ci = results[1].ci95("throughput");
//! assert!(ci.half_width.is_finite() && ci.half_width < ci.mean);
//! ```
//!
//! ## Tuning the MPL live
//!
//! The feedback controller of §4.3 finds the lowest MPL that meets the
//! DBA's loss targets, jump-started from the queueing models (full
//! sessions take a while — run the `figures` binary for real output):
//!
//! ```no_run
//! use extsched::core::{Driver, PolicyKind, Targets};
//! use extsched::workload::setup;
//!
//! let driver = Driver::new(setup(1));
//! let outcome = driver.run_controller(Targets::twenty_percent());
//! assert!(outcome.converged && outcome.iterations < 10); // the paper's bound
//!
//! // Run two-class priority scheduling at the tuned MPL.
//! let run = driver.run(outcome.final_mpl, PolicyKind::Priority, &driver.saturated());
//! assert!(run.rt_high < run.rt_low); // high priority gets faster service
//! ```

pub use xsched_core as core;
pub use xsched_dbms as dbms;
pub use xsched_queueing as queueing;
pub use xsched_sim as sim;
pub use xsched_workload as workload;
