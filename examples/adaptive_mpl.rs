//! Watch the feedback controller work, window by window (§4.3).
//!
//! Drives an [`MplController`] directly against the simulated DBMS so the
//! per-window trace (MPL, throughput, response time, verdict) is visible,
//! then contrasts convergence with and without the queueing-theoretic
//! jump-start.
//!
//! ```text
//! cargo run --release --example adaptive_mpl
//! ```

use extsched::core::{Driver, RunConfig, Targets};
use extsched::workload::setup;

fn main() {
    let rc = RunConfig {
        warmup_txns: 200,
        measured_txns: 1500,
        ..Default::default()
    };

    for id in [1u32, 5, 11] {
        let driver = Driver::new(setup(id)).with_config(rc.clone());
        let warm = driver.run_controller_with_start(Targets::five_percent(), None);
        let cold = driver.run_controller_with_start(Targets::five_percent(), Some(1));
        println!("setup {id:2} ({}):", driver.setup().workload.name);
        println!(
            "  queueing jump-start at MPL {:>3} -> converged at MPL {:>3} in {} windows",
            warm.jumpstart_mpl, warm.final_mpl, warm.iterations
        );
        for (i, w) in warm.trace.iter().enumerate() {
            println!(
                "    window {:>2}: MPL {:>3}  {:>6.1} txn/s  {:>7.3} s  {}",
                i + 1,
                w.mpl,
                w.throughput,
                w.mean_rt,
                if w.feasible { "feasible" } else { "INFEASIBLE" }
            );
        }
        println!(
            "  cold start          at MPL   1 -> converged at MPL {:>3} in {} windows",
            cold.final_mpl, cold.iterations
        );
        assert!(warm.converged && cold.converged);
    }

    println!(
        "\nThe jump-start is what lets the controller use small, conservative\n\
         reaction steps and still converge in a handful of observation windows\n\
         (the paper reports < 10 iterations across all 17 setups)."
    );
}
