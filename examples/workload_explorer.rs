//! Survey the paper's workload matrix: demand statistics (Table 1 / §3.2)
//! and the queueing-model MPL recommendations for each Table-2 setup —
//! everything the DBA needs before turning the controller on.
//!
//! ```text
//! cargo run --release --example workload_explorer
//! ```

use extsched::queueing::{recommend, ThroughputModel, H2};
use extsched::workload::{setups, workloads};

fn main() {
    println!("== Table 1 workloads: intrinsic demand statistics ==");
    println!(
        "{:<20} {:>10} {:>10} {:>8}",
        "workload", "mean (ms)", "pages/txn", "C2"
    );
    for w in workloads() {
        let io_cost = if w.name.contains("IO") { 0.005 } else { 0.0 };
        let (mean, c2) = w.intrinsic_demand_stats(io_cost);
        println!(
            "{:<20} {:>10.0} {:>10.1} {:>8.1}",
            w.name,
            mean * 1e3,
            w.mean_pages(),
            c2
        );
    }

    println!("\n== per-setup analytic MPL bounds (5% budgets) ==");
    println!(
        "{:<6} {:<20} {:>9} {:>9} {:>10}",
        "setup", "workload", "tput MPL", "rt MPL", "jumpstart"
    );
    for s in setups() {
        // Throughput bound: one station per hardware resource, balanced
        // worst case (the paper's model).
        let resources = (s.hw.cpus + s.hw.data_disks) as usize;
        let model = ThroughputModel::balanced(resources);
        let tput_mpl = recommend::min_mpl_for_throughput(&model, 0.95);
        // Response-time bound at a nominal load of 0.9.
        let io_cost = if s.workload.name.contains("IO") {
            0.005
        } else {
            0.0
        };
        let (mean, c2) = s.workload.intrinsic_demand_stats(io_cost);
        let h2 = H2::fit(mean, c2.max(1.0));
        let lambda = 0.9 / mean;
        let rt_mpl = recommend::min_mpl_for_response_time(h2, lambda, 0.05, 150);
        println!(
            "{:<6} {:<20} {:>9} {:>9} {:>10}",
            s.id,
            s.workload.name,
            tput_mpl,
            rt_mpl,
            tput_mpl.max(rt_mpl)
        );
    }
    println!(
        "\nThe throughput bound grows with the number of resources (Fig. 7);\n\
         the response-time bound grows with demand variability (Fig. 10).\n\
         The controller starts from the larger of the two."
    );
}
