//! Pure-analysis capacity planning with the paper's two queueing models —
//! no simulation, instant answers (§4.1–4.2).
//!
//! Question 1 (throughput): "my database is striped over d disks; how many
//! concurrent transactions do I need to keep throughput within 5% of max?"
//! → closed-network MVA (Fig. 7).
//!
//! Question 2 (response time): "my transaction demands have C² = 15 and
//! the system runs at 90% load; how low can the MPL go before mean
//! response time departs from processor sharing?" → flexible multiserver
//! queue (Fig. 10).
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use extsched::queueing::{mg1, recommend, FlexServer, ThroughputModel, H2};

fn main() {
    println!("== throughput bound (closed MVA model) ==");
    println!(
        "{:>6}  {:>12}  {:>12}",
        "disks", "MPL for 80%", "MPL for 95%"
    );
    for disks in [1usize, 2, 4, 8, 16] {
        let model = ThroughputModel::balanced(disks);
        println!(
            "{:>6}  {:>12}  {:>12}",
            disks,
            recommend::min_mpl_for_throughput(&model, 0.80),
            recommend::min_mpl_for_throughput(&model, 0.95)
        );
    }

    println!("\n== response-time bound (flexible multiserver queue) ==");
    let mean = 0.1; // 100 ms mean service demand
    println!(
        "{:>5}  {:>5}  {:>16}  {:>14}",
        "C2", "load", "MPL within 5% PS", "PS E[T] (ms)"
    );
    for &c2 in &[1.0, 2.0, 5.0, 15.0] {
        for &load in &[0.7, 0.9] {
            let lambda = load / mean;
            let h2 = H2::fit(mean, c2);
            let mpl = recommend::min_mpl_for_response_time(h2, lambda, 0.05, 200);
            let ps = mg1::mg1_ps_response_time(lambda, mean);
            println!("{c2:>5}  {load:>5}  {mpl:>16}  {:>14.0}", ps * 1e3);
        }
    }

    println!("\n== a concrete prediction ==");
    let h2 = H2::fit(mean, 15.0);
    let lambda = 0.9 / mean;
    for mpl in [1u32, 5, 10, 20, 30] {
        let t = FlexServer::new(lambda, h2, mpl).mean_response_time();
        println!(
            "  MPL {mpl:>2}: predicted mean response time {:.0} ms",
            t * 1e3
        );
    }
    let ps = mg1::mg1_ps_response_time(lambda, mean);
    println!("  PS    : {:.0} ms (insensitive to C²)", ps * 1e3);
    println!(
        "\nCombine both bounds (take the max) to jump-start the feedback\n\
         controller — see `MplController::jumpstart`."
    );
}
