//! Quickstart: tune the MPL automatically, then schedule with priorities.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use extsched::core::{Driver, PolicyKind, RunConfig, Targets};
use extsched::workload::setup;

fn main() {
    // Setup 1 of the paper: TPC-C-style inventory workload on 1 CPU and
    // 1 disk, Repeatable Read isolation, 100 closed clients.
    let rc = RunConfig {
        warmup_txns: 200,
        measured_txns: 1500,
        ..Default::default()
    };
    let driver = Driver::new(setup(1)).with_config(rc);

    // Let the feedback controller find the lowest MPL that keeps
    // throughput and mean response time within 5% of the unthrottled
    // system. It is jump-started from the queueing models of §4.
    println!("running controller (5% targets)...");
    let outcome = driver.run_controller(Targets::five_percent());
    println!(
        "  jump-start MPL {} -> final MPL {} in {} iterations (converged: {})",
        outcome.jumpstart_mpl, outcome.final_mpl, outcome.iterations, outcome.converged
    );
    println!(
        "  reference: {:.1} txn/s, {:.3} s mean response time",
        outcome.reference_tput, outcome.reference_rt
    );

    // Now run two-class priority scheduling at that MPL: 10% of the
    // transactions are high priority and jump the external queue.
    let run = driver.run(outcome.final_mpl, PolicyKind::Priority, &driver.saturated());
    println!("\npriority scheduling at MPL {}:", outcome.final_mpl);
    println!(
        "  high priority: {:.3} s over {} txns",
        run.rt_high, run.count_high
    );
    println!(
        "  low  priority: {:.3} s over {} txns",
        run.rt_low, run.count_low
    );
    println!(
        "  differentiation: {:.1}x, throughput {:.1} txn/s ({:.0}% of reference)",
        run.rt_low / run.rt_high,
        run.throughput,
        100.0 * run.throughput / outcome.reference_tput
    );
}
