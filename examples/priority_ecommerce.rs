//! The paper's motivating scenario (§1, §5): an e-commerce site whose
//! "big spenders" should see fast response times, implemented purely
//! *outside* the DBMS.
//!
//! Compares three deployments of the same TPC-W ordering workload:
//!   1. no external scheduling at all (the baseline everyone runs),
//!   2. external priority scheduling with an MPL tuned for ≤5% loss,
//!   3. the same with a 20% loss budget (stronger differentiation).
//!
//! ```text
//! cargo run --release --example priority_ecommerce
//! ```

use extsched::core::{Driver, RunConfig};
use extsched::workload::setup;

fn main() {
    // Setup 13: TPC-W ordering mix (the buy path carries the revenue),
    // 1 CPU, 1 disk, Repeatable Read.
    let rc = RunConfig {
        warmup_txns: 200,
        measured_txns: 1500,
        ..Default::default()
    };
    let driver = Driver::new(setup(13)).with_config(rc);

    println!("workload: {}", driver.setup().workload.name);
    for (label, loss) in [("5% loss budget", 0.05), ("20% loss budget", 0.20)] {
        let o = driver.priority_experiment(loss);
        println!("\n=== external prioritization, {label} (MPL {}) ===", o.mpl);
        println!("  big spenders (10%):   {:.3} s", o.rt_high);
        println!("  everyone else:        {:.3} s", o.rt_low);
        println!("  no prioritization:    {:.3} s", o.rt_noprio);
        println!(
            "  differentiation {:.1}x; low-priority penalty {:.2}x; throughput {:.1}/{:.1} txn/s",
            o.differentiation(),
            o.low_penalty(),
            o.achieved_tput,
            o.reference_tput,
        );
    }
    println!(
        "\nThe paper's finding: with the MPL tuned to the loss budget, external\n\
         prioritization differentiates by roughly an order of magnitude while\n\
         low-priority transactions suffer only modestly — no DBMS changes needed."
    );
}
