//! The paper's §4.1 validation: the simple closed queueing model predicts
//! the *relative* throughput-vs-MPL behaviour of the simulated DBMS.

use extsched::core::{Driver, PolicyKind, RunConfig};
use extsched::queueing::ClosedNetwork;
use extsched::workload::setup;

fn quick() -> RunConfig {
    RunConfig {
        warmup_txns: 100,
        measured_txns: 800,
        ..Default::default()
    }
}

/// Build the paper's model from measured utilizations and compare its
/// relative throughput curve against simulation for the pure-I/O workload.
#[test]
fn mva_model_tracks_simulated_relative_throughput() {
    // Setup 8: W_IO-inventory on 4 disks — the workload the paper uses to
    // parameterize and validate the model (Figs. 3 vs 7).
    let d = Driver::new(setup(8)).with_config(quick());
    let grid = [1u32, 2, 5, 10, 20, 40];
    let sim_curve = d.throughput_curve(&grid);
    let sim_max = sim_curve.iter().map(|r| r.throughput).fold(0.0, f64::max);

    // Parameterize the model from the near-saturated run, as §4.1 does:
    // one station per resource, rates proportional to utilization.
    let probe = &sim_curve[grid.iter().position(|&m| m == 20).unwrap()];
    let utils = probe.utilizations(d.setup().hw.cpus);
    let demands: Vec<f64> = utils.iter().copied().filter(|u| *u > 0.02).collect();
    let net = ClosedNetwork::new(demands);
    let model_max = net.max_throughput();

    for (&mpl, simr) in grid.iter().zip(&sim_curve) {
        let sim_rel = simr.throughput / sim_max;
        let model_rel = net.throughput(mpl) / model_max;
        assert!(
            (sim_rel - model_rel).abs() < 0.25,
            "MPL {mpl}: simulated {sim_rel:.2} vs model {model_rel:.2}"
        );
    }
}

/// The model is an upper bound on the MPL needed (it assumes the worst
/// case of perfectly balanced resources): the simulated system reaches 90%
/// of max at an MPL no higher than the model's 90% point by much.
#[test]
fn model_mpl_recommendation_is_conservative() {
    let d = Driver::new(setup(8)).with_config(quick());
    let grid = [1u32, 2, 3, 5, 7, 10, 15, 20, 30];
    let sim_curve = d.throughput_curve(&grid);
    let sim_max = sim_curve.iter().map(|r| r.throughput).fold(0.0, f64::max);
    let sim_mpl_90 = grid
        .iter()
        .zip(&sim_curve)
        .find(|(_, r)| r.throughput >= 0.9 * sim_max)
        .map(|(m, _)| *m)
        .unwrap();

    let probe = &sim_curve[grid.iter().position(|&m| m == 20).unwrap()];
    let utils = probe.utilizations(d.setup().hw.cpus);
    let demands: Vec<f64> = utils.iter().copied().filter(|u| *u > 0.02).collect();
    let net = ClosedNetwork::new(demands);
    let model_mpl_90 = (1..=200u32)
        .find(|&n| net.throughput(n) >= 0.9 * net.throughput(200))
        .unwrap();

    assert!(
        model_mpl_90 as f64 >= 0.5 * sim_mpl_90 as f64,
        "model ({model_mpl_90}) should not wildly underestimate the sim ({sim_mpl_90})"
    );
}

/// Fig. 10's qualitative claim transfers to the full simulator: under an
/// open system at fixed load, the high-C² workload needs a much larger
/// MPL than the low-C² workload before mean response time settles. The
/// low point is MPL 4 — the paper's §3.2 observation is that TPC-C is
/// already settled there (r4 ≈ r30) while C² ≈ 15 is far from settled;
/// below MPL 4 both systems are throughput-starved at load 0.7 and the
/// comparison would measure overload artifacts instead.
#[test]
fn variability_governs_response_time_sensitivity() {
    let rt_ratio_mpl4_vs_30 = |id: u32| -> f64 {
        // The heavy-tailed browsing workload (C² ≈ 15) needs a longer
        // window than `quick()`: with completion-count windows the rare
        // huge transactions bias short measurements (same scaling the
        // bench harness applies to browsing setups).
        let rc = if id == 3 {
            RunConfig {
                warmup_txns: 300,
                measured_txns: 4_000,
                min_warmup_time: 400.0,
                ..Default::default()
            }
        } else {
            quick()
        };
        let d = Driver::new(setup(id)).with_config(rc);
        let cap = d.reference().throughput;
        let arr = extsched::workload::ArrivalProcess::open(0.7 * cap);
        let lo = d.run(4, PolicyKind::Fifo, &arr).mean_rt;
        let hi = d.run(30, PolicyKind::Fifo, &arr).mean_rt;
        lo / hi
    };
    let tpcc = rt_ratio_mpl4_vs_30(1); // C² ≈ 1.3
    let tpcw = rt_ratio_mpl4_vs_30(3); // C² ≈ 15
    assert!(
        tpcw > tpcc,
        "high-C² workload must be more MPL-sensitive: tpcc {tpcc:.2} vs tpcw {tpcw:.2}"
    );
}
