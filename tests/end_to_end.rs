//! Cross-crate integration tests: workload → external scheduler →
//! simulated DBMS, checked against the paper's qualitative claims.

use extsched::core::{Driver, PolicyKind, RunConfig, Targets};
use extsched::workload::{setup, ArrivalProcess};

fn quick() -> RunConfig {
    RunConfig {
        warmup_txns: 100,
        measured_txns: 800,
        ..Default::default()
    }
}

#[test]
fn throughput_rises_then_plateaus_cpu_bound() {
    // Fig. 2 shape on setup 1: clear rise to a knee near MPL 5, then flat.
    let d = Driver::new(setup(1)).with_config(quick());
    let r = d.throughput_curve(&[1, 3, 5, 10, 20]);
    let t: Vec<f64> = r.iter().map(|x| x.throughput).collect();
    assert!(t[1] > 1.4 * t[0], "MPL 3 ≫ MPL 1: {t:?}");
    assert!(t[2] > 0.9 * t[4], "MPL 5 is near the plateau: {t:?}");
    assert!((t[3] - t[4]).abs() / t[4] < 0.15, "plateau is flat: {t:?}");
}

#[test]
fn io_bound_knee_grows_with_disks() {
    // Fig. 3: the MPL needed to reach (near-)max throughput grows with the
    // number of disks.
    let knee = |id: u32| -> u32 {
        let d = Driver::new(setup(id)).with_config(quick());
        let grid = [1u32, 2, 3, 5, 7, 10, 15, 20];
        let r = d.throughput_curve(&grid);
        let max = r.iter().map(|x| x.throughput).fold(0.0, f64::max);
        grid.iter()
            .zip(&r)
            .find(|(_, x)| x.throughput >= 0.9 * max)
            .map(|(m, _)| *m)
            .unwrap()
    };
    let k1 = knee(5); // 1 disk
    let k4 = knee(8); // 4 disks
    assert!(k1 <= 3, "1 disk saturates almost immediately: {k1}");
    assert!(k4 > k1, "4 disks need a higher MPL: {k1} vs {k4}");
}

#[test]
fn rr_thrashes_where_ur_does_not() {
    // Fig. 5: at very high concurrency the heavy-locking (RR) variant
    // loses throughput while UR holds it.
    let run = |id: u32| {
        Driver::new(setup(id))
            .with_config(quick())
            .run(100, PolicyKind::Fifo, &ArrivalProcess::saturated(100))
            .throughput
    };
    // Fig. 5b pair (ordering mix, where upgrade deadlocks bite hardest).
    let rr = run(13);
    let ur = run(14);
    assert!(
        ur > 1.1 * rr,
        "UR should clearly beat RR at 100 concurrent: rr={rr:.1} ur={ur:.1}"
    );
    // Fig. 5a pair (inventory mix): direction must hold.
    let rr = run(1);
    let ur = run(17);
    assert!(
        ur >= 0.99 * rr,
        "UR must not lose to RR: rr={rr:.1} ur={ur:.1}"
    );
}

#[test]
fn external_priority_differentiates_and_overall_barely_suffers() {
    // Fig. 11, one setup: high priority an order of magnitude faster than
    // low, and the overall mean not much above the no-priority baseline.
    let d = Driver::new(setup(1)).with_config(quick());
    let o = d.priority_experiment(0.05);
    assert!(o.differentiation() > 3.0, "weak differentiation: {:?}", o);
    assert!(
        o.rt_overall < 1.3 * o.rt_noprio,
        "overall mean should not explode: {} vs {}",
        o.rt_overall,
        o.rt_noprio
    );
    assert!(
        o.rt_high < o.rt_noprio,
        "high priority must beat the baseline"
    );
}

#[test]
fn controller_converges_within_paper_bound() {
    for id in [1u32, 5] {
        let d = Driver::new(setup(id)).with_config(quick());
        let o = d.run_controller(Targets::twenty_percent());
        assert!(o.converged, "setup {id} did not converge: {o:?}");
        assert!(
            o.iterations < 10,
            "setup {id}: {} iterations (paper bound <10)",
            o.iterations
        );
    }
}

#[test]
fn jumpstart_beats_cold_start() {
    let d = Driver::new(setup(5)).with_config(quick());
    let warm = d.run_controller_with_start(Targets::five_percent(), None);
    let cold = d.run_controller_with_start(Targets::five_percent(), Some(1));
    assert!(warm.converged && cold.converged);
    assert!(
        warm.iterations <= cold.iterations,
        "jump-start should not be slower: warm {} vs cold {}",
        warm.iterations,
        cold.iterations
    );
}

#[test]
fn open_system_mean_rt_insensitive_above_knee_for_tpcc() {
    // §3.2: for TPC-C-like (C² ≈ 1.3) workloads, response time is
    // insensitive to the MPL provided it is at least ~4.
    let d = Driver::new(setup(1)).with_config(quick());
    let cap = d.reference().throughput;
    let arr = ArrivalProcess::open(0.7 * cap);
    let r4 = d.run(4, PolicyKind::Fifo, &arr).mean_rt;
    let r30 = d.run(30, PolicyKind::Fifo, &arr).mean_rt;
    assert!(
        (r4 - r30).abs() / r30 < 0.6,
        "TPC-C open-system RT should be flat above MPL 4: {r4} vs {r30}"
    );
}

#[test]
fn runs_are_bitwise_reproducible() {
    let d = Driver::new(setup(3)).with_config(quick());
    let a = d.run(5, PolicyKind::Priority, &d.saturated());
    let b = d.run(5, PolicyKind::Priority, &d.saturated());
    assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
    assert_eq!(a.rt_high.to_bits(), b.rt_high.to_bits());
    assert_eq!(a.count_low, b.count_low);
}

#[test]
fn sjf_beats_fifo_on_mean_response_time() {
    // The SJF extension: with a high-variability workload and a low MPL,
    // shortest-job-first lowers overall mean response time vs FIFO.
    let d = Driver::new(setup(3)).with_config(quick());
    let fifo = d.run(5, PolicyKind::Fifo, &d.saturated());
    let sjf = d.run(5, PolicyKind::Sjf, &d.saturated());
    assert!(
        sjf.mean_rt < fifo.mean_rt,
        "SJF should win on mean RT: {} vs {}",
        sjf.mean_rt,
        fifo.mean_rt
    );
}
