//! Validate the DBMS simulator's resource models against exact queueing
//! theory by configuring degenerate workloads that collapse the simulator
//! to textbook queues.

use extsched::dbms::txn::{PageId, Priority, Step, TxnBody};
use extsched::dbms::{DbmsConfig, DbmsSim, HardwareConfig, StepOutcome};
use extsched::queueing::mg1;
use extsched::sim::{SimRng, SimTime, Welford};

/// Run an open M/./. system through the simulator: Poisson(λ) arrivals of
/// single-step transactions built by `mk`, no MPL, no locks; returns the
/// mean response time over `n` measured completions (after warm-up).
fn open_sim_mean_rt(
    hw: HardwareConfig,
    lambda: f64,
    n: u64,
    mk: impl Fn(&mut SimRng) -> TxnBody,
) -> f64 {
    let cfg = DbmsConfig {
        hit_cpu_time: 0.0,
        ..Default::default()
    };
    // No commit cost or step delay: a pure single-resource queue.
    let hw = HardwareConfig {
        log_write_time: 0.0,
        step_delay: 0.0,
        ..hw
    };
    let mut sim = DbmsSim::new(hw, cfg, 7);
    let mut rng = SimRng::derive(7, "arrivals");
    let mut body_rng = SimRng::derive(7, "bodies");
    sim.schedule_external(SimTime::from_secs_f64(rng.exp(1.0 / lambda)), 0);
    let mut rt = Welford::new();
    let warmup = n / 4;
    let mut done = 0u64;
    loop {
        match sim.step() {
            StepOutcome::Idle => break,
            StepOutcome::External(_) => {
                let body = mk(&mut body_rng);
                sim.submit(body, sim.now());
                let next = sim.now() + rng.exp(1.0 / lambda);
                sim.schedule_external(SimTime::from_secs_f64(next), 0);
            }
            StepOutcome::Advanced => {
                for c in sim.drain_completions() {
                    done += 1;
                    if done > warmup {
                        rt.push(c.response_time());
                    }
                }
            }
        }
        if done >= warmup + n {
            break;
        }
    }
    rt.mean()
}

#[test]
fn cpu_bank_matches_mm1() {
    // One CPU, exponential bursts: limited-PS with exponential service has
    // the M/M/1 queue-length law, so E[T] = E[S]/(1−ρ).
    let es = 0.01;
    let lambda = 70.0; // rho = 0.7
    let got = open_sim_mean_rt(HardwareConfig::default(), lambda, 60_000, |r| TxnBody {
        txn_type: 0,
        priority: Priority::Low,
        steps: vec![Step::compute(r.exp(es))],
    });
    let want = mg1::mm1_response_time(lambda, es);
    assert!(
        (got - want).abs() / want < 0.05,
        "sim {got:.5} vs M/M/1 {want:.5}"
    );
}

#[test]
fn cpu_bank_matches_mmc_for_two_cpus() {
    // Two CPUs sharing exponential jobs: birth–death rates min(n,2)·μ —
    // exactly M/M/2, so Erlang-C applies.
    let es = 0.01;
    let lambda = 160.0; // rho = 0.8 on two servers
    let hw = HardwareConfig::default().with_cpus(2);
    let got = open_sim_mean_rt(hw, lambda, 60_000, |r| TxnBody {
        txn_type: 0,
        priority: Priority::Low,
        steps: vec![Step::compute(r.exp(es))],
    });
    let want = mg1::mmc_response_time(lambda, es, 2);
    assert!(
        (got - want).abs() / want < 0.05,
        "sim {got:.5} vs M/M/2 {want:.5}"
    );
}

#[test]
fn cpu_bank_is_insensitive_to_job_size_variability() {
    // Processor sharing: mean response time depends on the service
    // distribution only through its mean (M/G/1-PS insensitivity). Feed
    // H2 jobs with C² = 10 and expect the exponential answer.
    let es = 0.01;
    let lambda = 70.0;
    let h2 = extsched::queueing::H2::fit(es, 10.0);
    let got = open_sim_mean_rt(HardwareConfig::default(), lambda, 120_000, |r| {
        let size = if r.chance(h2.p) {
            r.exp(1.0 / h2.mu1)
        } else {
            r.exp(1.0 / h2.mu2)
        };
        TxnBody {
            txn_type: 0,
            priority: Priority::Low,
            steps: vec![Step::compute(size)],
        }
    });
    let want = mg1::mg1_ps_response_time(lambda, es);
    assert!(
        (got - want).abs() / want < 0.08,
        "sim {got:.5} vs M/G/1-PS {want:.5}"
    );
}

#[test]
fn disk_matches_mg1_fifo() {
    // One data disk, exponential I/O service, one page per transaction,
    // empty buffer pool: the disk is an M/M/1 FIFO queue.
    let hw = HardwareConfig {
        bufferpool_pages: 1, // never hits
        disk_read_time: 0.01,
        ..Default::default()
    };
    let lambda = 70.0;
    let next_page = std::cell::Cell::new(1_000u64);
    let got = open_sim_mean_rt(hw, lambda, 60_000, move |_| {
        next_page.set(next_page.get() + 1);
        TxnBody {
            txn_type: 0,
            priority: Priority::Low,
            steps: vec![Step {
                lock: None,
                pages: vec![PageId(next_page.get())],
                cpu: 0.0,
            }],
        }
    });
    let want = mg1::mm1_response_time(lambda, 0.01);
    assert!(
        (got - want).abs() / want < 0.05,
        "sim {got:.5} vs M/M/1 disk {want:.5}"
    );
}
