//! Cross-crate property-based tests (proptest) on the system's invariants.

use extsched::core::{ExternalScheduler, Fifo, MplGate, QueuedTxn};
use extsched::dbms::lock::LockManager;
use extsched::dbms::txn::{ItemId, LockMode, Priority, Step, TxnBody, TxnId};
use extsched::dbms::LockPriorityPolicy;
use extsched::queueing::{ClosedNetwork, FlexServer, H2};
use proptest::prelude::*;

fn txn(prio: Priority) -> QueuedTxn {
    QueuedTxn {
        body: TxnBody {
            txn_type: 0,
            priority: prio,
            steps: vec![Step::compute(0.001)],
        },
        arrival: 0.0,
    }
}

proptest! {
    /// The gate only admits below the current limit, so occupancy can
    /// never exceed the largest limit that was ever in force (shrinking
    /// the MPL leaves the excess to drain, it never evicts).
    #[test]
    fn gate_never_exceeds_largest_limit(ops in proptest::collection::vec(0u8..3, 1..200), mpl in 1u32..20) {
        let mut g = MplGate::new(mpl);
        let mut limit = mpl;
        let mut max_limit = mpl;
        for op in ops {
            match op {
                0 => {
                    let before = g.in_flight();
                    if g.try_acquire() {
                        prop_assert!(before < g.mpl(), "admitted at/above the limit");
                    }
                }
                1 => { if g.in_flight() > 0 { g.release(); } }
                _ => { limit = (limit % 20) + 1; g.set_mpl(limit); max_limit = max_limit.max(limit); }
            }
            prop_assert!(g.in_flight() <= max_limit);
        }
    }

    /// The scheduler's in-flight count tracks dispatches minus completes
    /// and never exceeds the current MPL at dispatch time.
    #[test]
    fn scheduler_respects_mpl(ops in proptest::collection::vec(0u8..3, 1..300), mpl in 1u32..10) {
        let mut s = ExternalScheduler::new(Fifo::new(), mpl);
        let mut dispatched_minus_completed: i64 = 0;
        for op in ops {
            match op {
                0 => s.enqueue(txn(Priority::Low)),
                1 => {
                    if s.dispatch().is_some() {
                        dispatched_minus_completed += 1;
                        prop_assert!(s.in_flight() <= mpl);
                    }
                }
                _ => {
                    if dispatched_minus_completed > 0 {
                        s.complete();
                        dispatched_minus_completed -= 1;
                    }
                }
            }
            prop_assert_eq!(s.in_flight() as i64, dispatched_minus_completed);
        }
    }

    /// Lock manager safety under arbitrary request/release/abort traffic:
    /// never two exclusive holders, never S+X mixing, bookkeeping coherent.
    #[test]
    fn lock_manager_safety(
        ops in proptest::collection::vec((0u64..12, 0u64..6, any::<bool>(), 0u8..4), 1..400),
    ) {
        let mut lm = LockManager::new(LockPriorityPolicy::None);
        let mut live: Vec<TxnId> = Vec::new();
        let mut next = 0u64;
        for (t_sel, item, exclusive, action) in ops {
            match action {
                // start or pick a txn and request a lock
                0 | 1 => {
                    let t = if live.is_empty() || action == 0 {
                        let t = TxnId(next);
                        next += 1;
                        live.push(t);
                        t
                    } else {
                        live[(t_sel as usize) % live.len()]
                    };
                    // Only request if not already waiting.
                    if lm.waiting_for(t).is_none() {
                        let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                        let _ = lm.request(t, Priority::Low, ItemId(item), mode);
                    }
                }
                // commit a non-waiting txn
                2 => {
                    if let Some(pos) = live.iter().position(|t| lm.waiting_for(*t).is_none()) {
                        let t = live.swap_remove(pos);
                        let _ = lm.release_all(t);
                    }
                }
                // abort any txn
                _ => {
                    if !live.is_empty() {
                        let t = live.swap_remove((t_sel as usize) % live.len());
                        let _ = lm.abort(t);
                    }
                }
            }
            lm.check_invariants();
        }
    }

    /// MVA conservation: queue lengths sum to the population; throughput
    /// is monotone in population and bounded by the bottleneck.
    #[test]
    fn mva_conservation_and_bounds(
        demands in proptest::collection::vec(0.001f64..1.0, 1..8),
        n in 1u32..60,
    ) {
        let net = ClosedNetwork::new(demands);
        let series = net.solve_series(n);
        let mut prev = 0.0;
        for s in &series {
            let total: f64 = s.queue_lengths.iter().sum();
            prop_assert!((total - s.population as f64).abs() < 1e-6);
            prop_assert!(s.throughput >= prev - 1e-9);
            prop_assert!(s.throughput <= net.max_throughput() * (1.0 + 1e-9));
            prev = s.throughput;
        }
    }

    /// Flexible multiserver queue: E[T] is at least the PS lower bound and
    /// at most the M/G/1-FIFO value; waiting mass is nonnegative.
    #[test]
    fn flex_server_is_between_ps_and_fifo(
        c2 in 1.0f64..12.0,
        rho in 0.2f64..0.85,
        mpl in 1u32..12,
    ) {
        let mean = 0.1;
        let h2 = H2::fit(mean, c2);
        let lambda = rho / mean;
        let sol = FlexServer::new(lambda, h2, mpl).solve();
        let ps = extsched::queueing::mg1::mg1_ps_response_time(lambda, mean);
        let fifo = extsched::queueing::mg1::mg1_fifo_response_time_h2(lambda, &h2);
        prop_assert!(sol.mean_response_time >= ps * (1.0 - 1e-6),
            "below PS: {} < {}", sol.mean_response_time, ps);
        prop_assert!(sol.mean_response_time <= fifo * (1.0 + 1e-6),
            "above FIFO: {} > {}", sol.mean_response_time, fifo);
        prop_assert!(sol.mean_waiting >= -1e-9);
        prop_assert!(sol.p_empty > 0.0 && sol.p_empty < 1.0);
    }

    /// H2 fitting always reproduces the requested moments.
    #[test]
    fn h2_fit_roundtrip(mean in 0.001f64..100.0, c2 in 1.0f64..50.0) {
        let h2 = H2::fit(mean, c2);
        prop_assert!((h2.mean() - mean).abs() / mean < 1e-9);
        prop_assert!((h2.c2() - c2).abs() / c2 < 1e-9);
    }
}
